"""Pluggable crossbar execution backends (ROADMAP item 2, NIST daffodil style).

Every analog GEMV in the repo reads *programmed cell planes* — the per-slice
conductance levels a weight matrix was written into.  Historically those
planes were produced inline by :class:`~repro.rram.crossbar.ProgrammedMatrix`
(one idealized numpy simulation, programming noise only).  This module turns
that step into a seam: a :class:`CrossbarBackend` owns programming, reads,
lifetime state and health reporting, so one deployment can target

- :class:`SimBackend` — the historical idealized simulation, bitwise-equal
  to the pre-backend code path (guarded by golden-trace tests);
- :class:`FaultySimBackend` — the same simulation layered with device
  non-idealities: stuck-at-G_off/G_on cells, power-law conductance drift
  over deployment time, temperature-scaled read noise, and write-endurance
  wear that degrades re-programming precision;
- a future hardware-in-the-loop backend speaking the same protocol (the
  ``_Sim``/``_Phys`` split of NIST's daffodil-lib).

All fault mechanisms are seeded and deterministic: the backend owns an
explicit clock advanced via :meth:`CrossbarBackend.advance`, and effective
planes only change across ``advance``/``reprogram`` epochs — two GEMVs in
the same epoch read identical conductances, and a fixed seed reproduces an
entire lifetime sweep bit-for-bit.

Write traffic (initial programming, re-programming, and background dynamic
writes) is accounted in a :class:`~repro.rram.endurance.WearLedger`, tying
the backend's wear model to the paper's Section 5.2 endurance argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.rram.cell import CellType, RramDeviceParams
from repro.rram.endurance import WearLedger
from repro.rram.noise import apply_multiplicative_noise

__all__ = [
    "ProgrammedTile",
    "CrossbarBackend",
    "SimBackend",
    "FaultModel",
    "FaultySimBackend",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
]


@dataclass
class ProgrammedTile:
    """Per-matrix programmed state owned by a :class:`CrossbarBackend`.

    One tile corresponds to one :class:`~repro.rram.crossbar.ProgrammedMatrix`:
    ``ideal_levels`` are the exact integer slice levels (shape
    ``(in, out, n_slices)``), ``base_planes`` the frozen programming-noise
    realization (``None`` when programming was exact *and* the backend is
    ideal).  Lifetime fields (``programmed_at_s``, ``program_count``) drive
    the faulty backend's drift and wear mechanisms.

    Invariants: ``tile_id`` is unique within its backend; ``base_planes``
    (when present) has ``ideal_levels``' shape in the policy's storage
    dtype; callers never mutate fields directly — they go through the
    owning backend's :meth:`CrossbarBackend.reprogram` / ``advance``.
    """

    tile_id: int
    ideal_levels: np.ndarray
    cell: CellType
    noise_sigma: float
    storage_dtype: np.dtype
    rng: np.random.Generator
    base_planes: np.ndarray | None = None
    programmed_at_s: float = 0.0
    program_count: int = 1
    #: Tile-local monotonic counter bumped by every partial region write
    #: (dynamic operands); composes with the backend-wide ``epoch`` in
    #: plane-cache keys without invalidating *other* tiles' caches.
    write_epoch: int = 0
    # Fault state (FaultySimBackend only).
    stuck_off: np.ndarray | None = None
    stuck_on: np.ndarray | None = None
    # Effective-plane cache, keyed by the backend's clock epoch.
    _cache_epoch: int = -1
    _cache: np.ndarray | None = None

    @property
    def num_cells(self) -> int:
        """Number of physical cells this tile programs (all slices)."""
        return int(self.ideal_levels.size)


class CrossbarBackend(abc.ABC):
    """Protocol every crossbar execution target implements.

    The surface is deliberately small: *program* a bit-sliced weight matrix
    (returning a :class:`ProgrammedTile` handle), *read* its effective cell
    planes, *re-program* it in place, *advance* the shared device clock, and
    *report health*.  The GEMV kernels (:mod:`repro.rram.kernels`) stay
    backend-agnostic — they consume whatever planes the backend exposes.

    Implementations must be deterministic under a fixed seed: reads may only
    change across ``advance``/``reprogram`` calls (epochs), never between
    two GEMVs in the same epoch.
    """

    #: Human-readable backend identifier (used in health reports and studies).
    name: str = "abstract"

    def __init__(self, ledger: WearLedger | None = None) -> None:
        """Create the backend with an optional shared wear ledger."""
        self.ledger = ledger if ledger is not None else WearLedger()
        self._tiles: list[ProgrammedTile] = []
        self._now_s = 0.0
        self._epoch = 0

    # -- lifetime clock -----------------------------------------------------
    @property
    def now_s(self) -> float:
        """Current device-lifetime clock in seconds since backend creation."""
        return self._now_s

    @property
    def epoch(self) -> int:
        """Monotonic counter bumped by every ``advance``/``reprogram``."""
        return self._epoch

    def advance(self, seconds: float = 0.0, writes: int = 0) -> None:
        """Advance the device clock by ``seconds`` and ``writes`` cycles.

        ``writes`` models background dynamic-data write cycles per cell
        (the digital-PIM traffic sharing the die): they age every
        programmed tile's wear fraction and are recorded in the ledger.
        Advancing invalidates cached effective planes, so the next GEMV
        observes the new lifetime point.
        """
        if seconds < 0 or writes < 0:
            raise ValueError("advance() takes non-negative seconds and writes")
        self._now_s += float(seconds)
        if writes:
            self.ledger.record_background(writes)
        self._epoch += 1

    # -- programming --------------------------------------------------------
    def program(
        self,
        ideal_levels: np.ndarray,
        cell: CellType,
        noise_sigma: float,
        rng: np.random.Generator,
        storage_dtype: np.dtype,
    ) -> ProgrammedTile:
        """Program one bit-sliced matrix; returns its state handle.

        ``ideal_levels`` are the exact integer slice levels from
        :func:`~repro.rram.crossbar.slice_weights` (shape
        ``(in, out, n_slices)``); ``noise_sigma`` the calibrated
        programming-noise σ for ``cell``; ``rng`` the caller's generator
        (consumed exactly as the pre-backend code did, preserving bitwise
        compatibility); ``storage_dtype`` the kernel policy's plane dtype.
        The write traffic (``cells × cell.write_pulses``) lands in the
        ledger.
        """
        tile = ProgrammedTile(
            tile_id=len(self._tiles),
            ideal_levels=ideal_levels,
            cell=cell,
            noise_sigma=float(noise_sigma),
            storage_dtype=np.dtype(storage_dtype),
            rng=rng,
        )
        self._program_tile(tile)
        self._tiles.append(tile)
        self.ledger.record_program(
            tile.tile_id, tile.num_cells, cell.write_pulses, reprogram=False
        )
        return tile

    def reprogram(self, tile: ProgrammedTile) -> None:
        """Re-write ``tile``'s cells (fresh noise draw, drift clock reset).

        Re-programming is the recovery action online recalibration takes
        against drifted or worn tiles: it redraws the programming-noise
        realization (wear-scaled on faulty backends), resets the tile's
        drift reference time to *now*, and records the write traffic as a
        re-program in the ledger.
        """
        tile.program_count += 1
        tile.programmed_at_s = self._now_s
        self._program_tile(tile)
        self._epoch += 1
        tile._cache = None
        tile._cache_epoch = -1
        self.ledger.record_program(
            tile.tile_id, tile.num_cells, tile.cell.write_pulses, reprogram=True
        )

    def program_region(
        self,
        tile: ProgrammedTile,
        row_slice: slice,
        col_slice: slice,
        levels: np.ndarray,
    ) -> None:
        """Write ``levels`` into a sub-region of ``tile`` in place.

        The dynamic-operand primitive: unlike :meth:`reprogram`, only the
        ``[row_slice, col_slice, :]`` region of the tile's cells is
        re-written (an incremental row append costs only the appended
        cells' write pulses), the tile's drift reference time and program
        count are untouched, and the *backend-wide* epoch does not move —
        every other tile's cached planes stay valid.  The write bumps the
        tile-local ``write_epoch`` (readers key their caches on it),
        applies the tile's frozen programming-noise model to the new cells
        only, and records ``levels.size x cell.write_pulses`` in the
        ledger's dynamic-write channel.
        """
        if levels.ndim != 3:
            raise ValueError(f"levels must be 3-D (rows, cols, slices), got {levels.ndim}-D")
        region = tile.ideal_levels[row_slice, col_slice, :]
        if region.shape != levels.shape:
            raise ValueError(
                f"region shape {region.shape} does not match levels shape {levels.shape}"
            )
        tile.cell.validate_levels(levels)
        tile.ideal_levels[row_slice, col_slice, :] = levels
        if tile.base_planes is not None:
            tile.base_planes[row_slice, col_slice, :] = apply_multiplicative_noise(
                levels.astype(np.float64), tile.noise_sigma, tile.rng
            ).astype(tile.storage_dtype)
        tile.write_epoch += 1
        tile._cache = None
        tile._cache_epoch = -1
        self.ledger.record_region(
            tile.tile_id, int(levels.size), tile.cell.write_pulses
        )

    # -- reads --------------------------------------------------------------
    @abc.abstractmethod
    def planes(self, tile: ProgrammedTile) -> np.ndarray:
        """Effective cell planes for ``tile`` at the current clock epoch.

        Returns an array of ``tile.ideal_levels``' shape: integer slice
        levels when the tile is ideal, floats (programming noise + any
        lifetime effects) otherwise.  Stable within one epoch.
        """

    @abc.abstractmethod
    def is_ideal(self, tile: ProgrammedTile) -> bool:
        """True when ``planes(tile)`` equals the exact integer slice levels.

        Kernels use this to license the exact noiseless one-matmul
        shortcut, so a backend must only return True when *no* mechanism
        (noise, faults, drift, wear) can perturb a read.
        """

    @abc.abstractmethod
    def _program_tile(self, tile: ProgrammedTile) -> None:
        """Backend-specific (re)programming: populate ``tile.base_planes``."""

    # -- health -------------------------------------------------------------
    def wear_fraction(self, tile: ProgrammedTile) -> float:
        """Fraction of ``tile``'s write endurance consumed so far."""
        return self.ledger.wear_fraction(tile.tile_id)

    def health_report(self) -> dict:
        """Deployment-health snapshot: clock, tiles, wear and write totals.

        Subclasses extend this with their mechanism-specific fields (stuck
        cell fraction, worst drift factor, ...).  The report is
        JSON-serializable — studies drop it straight into result payloads.
        """
        wear = [self.wear_fraction(t) for t in self._tiles]
        return {
            "backend": self.name,
            "time_s": self._now_s,
            "epoch": self._epoch,
            "tiles": len(self._tiles),
            "cells": int(sum(t.num_cells for t in self._tiles)),
            "programs": self.ledger.programs,
            "reprograms": self.ledger.reprograms,
            "dynamic_writes": self.ledger.dynamic_writes,
            "total_write_pulses": self.ledger.total_write_pulses,
            "max_wear_fraction": max(wear, default=0.0),
            "mean_wear_fraction": float(np.mean(wear)) if wear else 0.0,
        }


class SimBackend(CrossbarBackend):
    """The historical idealized simulation behind a backend interface.

    Programming applies one multiplicative-Gaussian noise draw (Eq. (5))
    frozen at write time; reads return those planes unchanged forever.
    Bitwise-equal to the pre-backend inline code path — same rng draw
    order, same dtype casts — which the golden-trace tests pin down.
    """

    name = "sim"

    def _program_tile(self, tile: ProgrammedTile) -> None:
        """Freeze one Eq. (5) noise realization (or none when σ = 0)."""
        if tile.noise_sigma == 0.0:
            # Noiseless cells equal the integer slice levels exactly; keeping
            # a float copy would double programmed-weight memory for nothing.
            tile.base_planes = None
        else:
            tile.base_planes = apply_multiplicative_noise(
                tile.ideal_levels.astype(np.float64), tile.noise_sigma, tile.rng
            ).astype(tile.storage_dtype)

    def planes(self, tile: ProgrammedTile) -> np.ndarray:
        """Frozen programming-noise planes (ideal levels when σ = 0)."""
        return tile.ideal_levels if tile.base_planes is None else tile.base_planes

    def is_ideal(self, tile: ProgrammedTile) -> bool:
        """True exactly when the tile was programmed noiselessly."""
        return tile.base_planes is None


@dataclass(frozen=True)
class FaultModel:
    """Device non-ideality knobs for :class:`FaultySimBackend`.

    Parameters
    ----------
    stuck_off_rate / stuck_on_rate:
        Fraction of cells permanently stuck at G_off (reads as level 0) /
        G_on (reads as the cell's max level), drawn once per tile from the
        backend seed.  Stuck cells ignore programming entirely.
    drift_nu / drift_t0_s:
        Power-law conductance drift ``G(t) = G0 · (1 + t/t0)^(−ν)`` with
        ``t`` the seconds since the tile was last (re)programmed.  ν = 0
        disables drift; typical filamentary RRAM sits around ν ≈ 0.01-0.1
        with t0 of about a day.
    temperature_c / temp_ref_c / temp_sigma_per_c:
        Temperature-scaled read noise: each degree above ``temp_ref_c``
        adds ``temp_sigma_per_c`` of multiplicative σ to every read epoch
        (redrawn deterministically per epoch from the backend seed).
    wear_sigma_growth:
        Programming-noise growth per unit wear: a tile re-programmed at
        wear fraction ``f`` draws its noise with σ scaled by
        ``1 + wear_sigma_growth · f`` — worn cells program less precisely.
    endurance_cycles:
        Per-cell write endurance used for wear fractions (default: the
        device's 1e8, matching :class:`~repro.rram.endurance.EnduranceModel`).
    """

    stuck_off_rate: float = 0.0
    stuck_on_rate: float = 0.0
    drift_nu: float = 0.0
    drift_t0_s: float = 86_400.0
    temperature_c: float = 25.0
    temp_ref_c: float = 25.0
    temp_sigma_per_c: float = 0.0
    wear_sigma_growth: float = 0.0
    endurance_cycles: float = RramDeviceParams().endurance_cycles

    def __post_init__(self) -> None:
        """Validate rates and coefficients at the boundary."""
        if not 0.0 <= self.stuck_off_rate <= 1.0 or not 0.0 <= self.stuck_on_rate <= 1.0:
            raise ValueError("stuck rates must be in [0, 1]")
        if self.stuck_off_rate + self.stuck_on_rate > 1.0:
            raise ValueError("stuck_off_rate + stuck_on_rate must not exceed 1")
        if self.drift_nu < 0 or self.drift_t0_s <= 0:
            raise ValueError("drift_nu must be >= 0 and drift_t0_s > 0")
        if self.temp_sigma_per_c < 0 or self.wear_sigma_growth < 0:
            raise ValueError("temp_sigma_per_c and wear_sigma_growth must be >= 0")
        if self.endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive")

    @property
    def excess_temp_sigma(self) -> float:
        """Extra multiplicative read-noise σ from operating above reference."""
        return max(0.0, self.temperature_c - self.temp_ref_c) * self.temp_sigma_per_c

    @property
    def active(self) -> bool:
        """True when any mechanism can perturb a read or a re-program."""
        return (
            self.stuck_off_rate > 0.0
            or self.stuck_on_rate > 0.0
            or self.drift_nu > 0.0
            or self.excess_temp_sigma > 0.0
            or self.wear_sigma_growth > 0.0
        )

    def drift_factor(self, elapsed_s: float) -> float:
        """Multiplicative conductance retention after ``elapsed_s`` seconds."""
        if self.drift_nu == 0.0 or elapsed_s <= 0.0:
            return 1.0
        return float((1.0 + elapsed_s / self.drift_t0_s) ** (-self.drift_nu))


class FaultySimBackend(CrossbarBackend):
    """Simulation backend layering device faults over the clean sim.

    Effective planes are recomputed lazily per clock epoch as::

        planes = stuck(  drift(t) · temp_noise(epoch) · base_planes  )

    where ``base_planes`` carry the (wear-scaled) programming noise frozen
    at the last (re)program, ``drift(t)`` is the power-law retention factor
    since then, ``temp_noise`` a per-epoch multiplicative draw, and
    ``stuck`` pins defective cells at level 0 / max level.  Everything is
    derived from ``seed`` — a fixed seed reproduces a whole lifetime sweep
    bit-for-bit, which the determinism tests and the ``bench_faults`` CI
    gate rely on.
    """

    name = "faulty-sim"

    def __init__(
        self,
        fault: FaultModel | None = None,
        seed: int = 0,
        ledger: WearLedger | None = None,
    ) -> None:
        """Create the backend from a :class:`FaultModel` and a seed."""
        self.fault = fault or FaultModel()
        self.seed = int(seed)
        if ledger is None:
            ledger = WearLedger(endurance_cycles=self.fault.endurance_cycles)
        super().__init__(ledger=ledger)

    def _program_tile(self, tile: ProgrammedTile) -> None:
        """(Re)draw programming noise with wear-scaled σ; draw stuck masks once."""
        sigma = tile.noise_sigma
        if self.fault.wear_sigma_growth > 0.0 and tile.program_count > 1:
            sigma *= 1.0 + self.fault.wear_sigma_growth * self.wear_fraction(tile)
        if sigma == 0.0 and not self.fault.active:
            tile.base_planes = None
        else:
            tile.base_planes = apply_multiplicative_noise(
                tile.ideal_levels.astype(np.float64), sigma, tile.rng
            ).astype(tile.storage_dtype)
        if tile.stuck_off is None and (
            self.fault.stuck_off_rate > 0.0 or self.fault.stuck_on_rate > 0.0
        ):
            # Manufacturing defects: drawn once per tile from the backend
            # seed, independent of the caller's programming rng.
            fault_rng = np.random.default_rng((self.seed, 0x5F17, tile.tile_id))
            uniform = fault_rng.random(tile.ideal_levels.shape)
            tile.stuck_off = uniform < self.fault.stuck_off_rate
            tile.stuck_on = (~tile.stuck_off) & (
                uniform < self.fault.stuck_off_rate + self.fault.stuck_on_rate
            )

    def planes(self, tile: ProgrammedTile) -> np.ndarray:
        """Effective planes at the current epoch (cached until it changes)."""
        if tile.base_planes is None:
            return tile.ideal_levels
        if tile._cache_epoch == self._epoch and tile._cache is not None:
            return tile._cache
        effective = tile.base_planes.astype(np.float64)
        factor = self.fault.drift_factor(self._now_s - tile.programmed_at_s)
        if factor != 1.0:
            effective = effective * factor
        sigma_t = self.fault.excess_temp_sigma
        if sigma_t > 0.0:
            read_rng = np.random.default_rng(
                (self.seed, 0x7E39, tile.tile_id, tile.program_count, self._epoch)
            )
            effective = apply_multiplicative_noise(effective, sigma_t, read_rng)
        if tile.stuck_off is not None:
            effective[tile.stuck_off] = 0.0
            effective[tile.stuck_on] = float(tile.cell.max_level)
        effective = effective.astype(tile.storage_dtype)
        tile._cache = effective
        tile._cache_epoch = self._epoch
        return effective

    def is_ideal(self, tile: ProgrammedTile) -> bool:
        """Only ideal when programmed noiselessly with every mechanism off."""
        return tile.base_planes is None

    def stuck_cell_fraction(self) -> float:
        """Fraction of all programmed cells pinned by stuck-at defects."""
        total = sum(t.num_cells for t in self._tiles)
        if not total:
            return 0.0
        stuck = sum(
            int(t.stuck_off.sum()) + int(t.stuck_on.sum())
            for t in self._tiles
            if t.stuck_off is not None
        )
        return stuck / total

    def health_report(self) -> dict:
        """Base report plus fault-mechanism telemetry (drift, stuck, temp)."""
        report = super().health_report()
        oldest = min(
            (t.programmed_at_s for t in self._tiles), default=self._now_s
        )
        report.update(
            {
                "stuck_cell_fraction": self.stuck_cell_fraction(),
                "worst_drift_factor": self.fault.drift_factor(self._now_s - oldest),
                "temperature_c": self.fault.temperature_c,
                "excess_temp_sigma": self.fault.excess_temp_sigma,
            }
        )
        return report


_default_backend: CrossbarBackend = SimBackend()


def get_default_backend() -> CrossbarBackend:
    """The process-wide backend used when none is passed explicitly."""
    return _default_backend


def set_default_backend(backend: CrossbarBackend) -> CrossbarBackend:
    """Install ``backend`` process-wide; returns the previous default."""
    global _default_backend
    if not isinstance(backend, CrossbarBackend):
        raise TypeError(f"expected CrossbarBackend, got {type(backend).__name__}")
    previous = _default_backend
    _default_backend = backend
    return previous


def resolve_backend(backend: CrossbarBackend | None) -> CrossbarBackend:
    """``backend`` if given, else the process-wide default."""
    return backend if backend is not None else _default_backend
