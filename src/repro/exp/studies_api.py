"""Scale-out serving benchmark: replica throughput, API SLOs, pipelined decode.

The ``bench_api`` study measures the PR-10 serving tier end to end:

- **replica_scaling** — wall-clocked tokens/s of a
  :class:`~repro.serve.ReplicaPool` of real worker processes at 1/2/4
  replicas over the same request set (paper replication case 2: the same
  model programmed onto N chip sets, load-balanced).
- **api_streaming** — an open-loop Poisson load generator against the
  :class:`~repro.serve.ApiServer` SSE endpoint; recorded TTFT and
  end-to-end latency are *client-observed* (socket send to first event on
  the wire), swept over arrival rates calibrated to measured capacity.
- **pipelined** — the stage-pipelined block executor vs the sequential
  decode path on the same trace, with a token-for-token equality check.
- **projection** — measured replica scaling against the
  :class:`~repro.dist.HardwareProjection` replication model (N data-parallel
  replicas project N x one replica's rate; no cross-replica coupling).

Every measured section is host-capacity dependent: the payload records
``cpus`` (the scheduler affinity count) and the benchmark driver keys its
perf gates on it — full scaling thresholds need real cores, a 1-CPU runner
only gets no-regression bounds.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

import numpy as np

from repro.exp.registry import experiment

__all__ = ["bench_api"]

#: Replica counts of the scaling sweep (the 4-replica point is the gated one).
API_REPLICAS = (1, 2, 4)
#: Open-loop utilization points (arrival rate as a fraction of measured
#: single-engine capacity).  The 0.5 point is the gated "bounded p99 TTFT"
#: regime; 0.9 documents queueing growth near saturation.
API_UTILIZATIONS = (0.5, 0.9)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _api_model_config(params: dict[str, Any], seed: int):
    from repro.nn import TransformerConfig

    return TransformerConfig(
        vocab_size=int(params.get("vocab_size", 96)),
        d_model=int(params.get("d_model", 48)),
        num_heads=int(params.get("num_heads", 4)),
        num_layers=int(params.get("num_layers", 2)),
        d_ff=int(params.get("d_ff", 128)),
        max_seq_len=int(params.get("max_seq_len", 48)),
        seed=seed,
    )


def _make_requests(
    config, num_requests: int, prompt_len: int, new_tokens: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, int]]:
    return [
        (rng.integers(0, config.vocab_size, size=prompt_len), new_tokens)
        for _ in range(num_requests)
    ]


# ----------------------------------------------------------------------
# Replica scaling (process pool, real scale-out)
# ----------------------------------------------------------------------
def _pool_point(config, requests, replicas: int, processes: bool) -> dict[str, Any]:
    from repro.nn import DecoderLM
    from repro.serve import ReplicaPool, ServingEngine

    def factory(index: int) -> ServingEngine:
        return ServingEngine(DecoderLM(config), max_batch_size=8, max_wait_s=0.0)

    with ReplicaPool(
        factory, replicas=replicas, router="least_outstanding_tokens", processes=processes
    ) as pool:
        start = time.perf_counter()
        ids = [pool.submit(prompt, budget) for prompt, budget in requests]
        results = {r.request_id: r for r in pool.drain(timeout_s=120.0)}
        wall_s = time.perf_counter() - start
        tokens = sum(int(results[rid].tokens.size) for rid in ids)
    return {
        "replicas": replicas,
        "processes": processes,
        "tokens": tokens,
        "wall_s": round(wall_s, 4),
        "tok_s": round(tokens / wall_s, 1),
    }


def _replica_scaling(config, params: dict[str, Any], rng: np.random.Generator) -> dict[str, Any]:
    replicas = tuple(int(r) for r in params.get("replicas", API_REPLICAS))
    num_requests = int(params.get("pool_requests", 16))
    prompt_len = int(params.get("prompt_len", 8))
    new_tokens = int(params.get("new_tokens", 16))
    processes = bool(params.get("pool_processes", True))
    requests = _make_requests(config, num_requests, prompt_len, new_tokens, rng)
    grid = [_pool_point(config, requests, n, processes) for n in replicas]
    base = grid[0]["tok_s"]
    for row in grid:
        row["speedup"] = round(row["tok_s"] / base, 2) if base else 0.0
    return {
        "num_requests": num_requests,
        "prompt_len": prompt_len,
        "new_tokens": new_tokens,
        "grid": grid,
    }


# ----------------------------------------------------------------------
# Open-loop Poisson load against the streaming API
# ----------------------------------------------------------------------
def _engine_capacity_tok_s(config, requests) -> float:
    """Measured single-engine tokens/s used to calibrate arrival rates."""
    from repro.nn import DecoderLM
    from repro.serve import ServingEngine

    engine = ServingEngine(DecoderLM(config), max_batch_size=8, max_wait_s=0.0)
    start = time.perf_counter()
    results = engine.serve([p for p, _ in requests], max_new_tokens=requests[0][1])
    wall_s = time.perf_counter() - start
    tokens = sum(int(r.tokens.size) for r in results)
    return tokens / wall_s


def _poisson_arrivals(n: int, rate_per_s: float, rng: np.random.Generator) -> np.ndarray:
    return np.cumsum(rng.exponential(1.0 / rate_per_s, size=n))


def _open_loop_point(
    server, requests, rate_per_s: float, rng: np.random.Generator
) -> dict[str, Any]:
    """Fire requests at Poisson arrival times; collect client-side timings."""
    from repro.serve.api import stream_generate

    arrivals = _poisson_arrivals(len(requests), rate_per_s, rng)
    outcomes: list[dict | None] = [None] * len(requests)

    def client(i: int, offset: float, prompt: np.ndarray, budget: int) -> None:
        time.sleep(max(0.0, offset - (time.perf_counter() - epoch)))
        outcomes[i] = stream_generate(
            server.host,
            server.port,
            {"prompt": [int(t) for t in prompt], "max_new_tokens": budget},
        )

    epoch = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(i, arrivals[i], prompt, budget))
        for i, (prompt, budget) in enumerate(requests)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    done = [o for o in outcomes if o is not None and o.get("status") == 200]
    rejected = sum(1 for o in outcomes if o is not None and o.get("status") == 503)
    ttft = np.array([o["client_ttft_s"] for o in done]) if done else np.zeros(1)
    e2e = np.array([o["client_latency_s"] for o in done]) if done else np.zeros(1)
    tokens = sum(len(o["tokens"]) for o in done)
    span = float(arrivals[-1] + e2e.max()) if done else 0.0
    return {
        "rate_per_s": round(rate_per_s, 2),
        "completed": len(done),
        "rejected": rejected,
        "tokens": tokens,
        "tok_s": round(tokens / span, 1) if span else 0.0,
        "p50_ttft_s": round(float(np.percentile(ttft, 50)), 6),
        "p99_ttft_s": round(float(np.percentile(ttft, 99)), 6),
        "p50_latency_s": round(float(np.percentile(e2e, 50)), 6),
        "p99_latency_s": round(float(np.percentile(e2e, 99)), 6),
    }


def _api_streaming(config, params: dict[str, Any], rng: np.random.Generator) -> dict[str, Any]:
    from repro.nn import DecoderLM
    from repro.serve import AdmissionPolicy, ApiServer, ServingEngine

    num_requests = int(params.get("api_requests", 12))
    prompt_len = int(params.get("prompt_len", 8))
    new_tokens = int(params.get("api_new_tokens", 8))
    utilizations = tuple(float(u) for u in params.get("utilizations", API_UTILIZATIONS))
    requests = _make_requests(config, num_requests, prompt_len, new_tokens, rng)
    capacity_tok_s = _engine_capacity_tok_s(config, requests)
    capacity_req_s = capacity_tok_s / new_tokens

    engine = ServingEngine(DecoderLM(config), max_batch_size=8, max_wait_s=0.0)
    server = ApiServer(engine, policy=AdmissionPolicy(max_queue_depth=256))
    server.start_in_thread()
    try:
        sweep = [
            _open_loop_point(server, requests, util * capacity_req_s, rng)
            for util in utilizations
        ]
        for util, row in zip(utilizations, sweep):
            row["utilization"] = util
    finally:
        server.stop_in_thread()
    return {
        "num_requests": num_requests,
        "new_tokens": new_tokens,
        "capacity_tok_s": round(capacity_tok_s, 1),
        "sweep": sweep,
    }


# ----------------------------------------------------------------------
# Stage-pipelined vs sequential decode
# ----------------------------------------------------------------------
def _run_engine(config, requests, pipeline) -> tuple[dict[str, Any], list]:
    from repro.nn import DecoderLM
    from repro.serve import ServingEngine

    engine = ServingEngine(DecoderLM(config), max_batch_size=8, max_wait_s=0.0, pipeline=pipeline)
    ids = [engine.submit(prompt, budget) for prompt, budget in requests]
    start = time.perf_counter()
    results = {r.request_id: r for r in engine.run_until_idle()}
    wall_s = time.perf_counter() - start
    if engine.executor is not None:
        engine.executor.close()
    ordered = [results[rid] for rid in ids]
    tokens = sum(int(r.tokens.size) for r in ordered)
    return {
        "tokens": tokens,
        "wall_s": round(wall_s, 4),
        "tok_s": round(tokens / wall_s, 1),
    }, ordered


def _pipelined_comparison(config, params: dict[str, Any], rng: np.random.Generator) -> dict[str, Any]:
    num_requests = int(params.get("pipeline_requests", 12))
    prompt_len = int(params.get("prompt_len", 8))
    new_tokens = int(params.get("new_tokens", 16))
    stages = int(params.get("pipeline_stages", 2))
    requests = _make_requests(config, num_requests, prompt_len, new_tokens, rng)
    sequential, seq_results = _run_engine(config, requests, None)
    pipelined, pipe_results = _run_engine(config, requests, stages)
    for i, (seq, pipe) in enumerate(zip(seq_results, pipe_results)):
        if not np.array_equal(seq.tokens, pipe.tokens):
            raise AssertionError(f"pipelined decode diverged from sequential on request {i}")
    return {
        "num_requests": num_requests,
        "stages": stages,
        "sequential": sequential,
        "pipelined": pipelined,
        "speedup": round(pipelined["tok_s"] / sequential["tok_s"], 2),
        "bitwise_equal": True,
    }


# ----------------------------------------------------------------------
# Measured vs projected replica scaling
# ----------------------------------------------------------------------
def _projection_agreement(config, scaling: dict[str, Any], seed: int) -> dict[str, Any]:
    """Replication case 2: N replicas project N x one replica's rate."""
    from repro.dist import DeviceMesh, HardwareProjection, ShardPlan
    from repro.svd.pipeline import LayerPlan

    rng = np.random.default_rng(seed)
    rank = 16
    mask = np.zeros(rank, dtype=bool)
    mask[:4] = True
    plans = {}
    for block in range(config.num_layers):
        name = f"blocks.{block}.proxy"
        plans[name] = LayerPlan(
            name=name,
            a_matrix=rng.normal(size=(rank, config.d_model)) / np.sqrt(config.d_model),
            b_matrix=rng.normal(size=(config.d_model, rank)) / np.sqrt(rank),
            bias=None,
            protected_ranks=mask,
            sigma_gradients=rng.random(rank),
        )
    plan = ShardPlan.build(plans, DeviceMesh(num_chips=1))
    rate = HardwareProjection(plan, hidden_dim=config.d_model).pipeline_rate_tokens_per_s()
    rows = []
    for row in scaling["grid"]:
        n = row["replicas"]
        rows.append(
            {
                "replicas": n,
                "measured_speedup": row["speedup"],
                "projected_speedup": float(n),
                "efficiency": round(row["speedup"] / n, 3),
            }
        )
    return {
        "projected_single_replica_tok_s": round(rate, 1),
        "scaling": rows,
    }


# ----------------------------------------------------------------------
@experiment(
    "bench_api",
    smoke={
        "replicas": (1, 2),
        "pool_requests": 6,
        "api_requests": 6,
        "pipeline_requests": 6,
        "utilizations": (0.5,),
        "new_tokens": 8,
    },
)
def bench_api(params: dict[str, Any], seed: int) -> dict[str, Any]:
    """Scale-out serving tier benchmark (PR-10 acceptance payload).

    Measures :class:`~repro.serve.ReplicaPool` tokens/s at 1/2/4 worker
    processes, client-observed p50/p99 TTFT and end-to-end latency of the
    :class:`~repro.serve.ApiServer` SSE endpoint under open-loop Poisson
    load (rates calibrated to measured capacity), the stage-pipelined
    executor against the sequential decode path (token-equality checked),
    and agreement with the :class:`~repro.dist.HardwareProjection`
    replication model.  Lands in ``BENCH_api.json``; the driver's gates
    are capacity-aware via the recorded ``cpus``.
    """
    config = _api_model_config(params, seed)
    rng = np.random.default_rng(seed)
    scaling = _replica_scaling(config, params, rng)
    return {
        "cpus": _cpus(),
        "model": {
            "d_model": config.d_model,
            "num_layers": config.num_layers,
            "num_heads": config.num_heads,
            "max_seq_len": config.max_seq_len,
            "vocab_size": config.vocab_size,
        },
        "replica_scaling": scaling,
        "api_streaming": _api_streaming(config, params, rng),
        "pipelined": _pipelined_comparison(config, params, rng),
        "projection": _projection_agreement(config, scaling, seed),
    }
