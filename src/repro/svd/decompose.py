"""SVD decomposition, hard-threshold truncation and sigma-merging.

Implements Section 4.1 / Fig. 10 of the paper:

1. ``W = U Σ Vᵀ`` (full SVD of a static weight matrix);
2. truncation at the *hard threshold* rank
   ``D_Th = D_h1 · D_h2 / (D_h1 + D_h2)``, chosen so that the factored layer
   ``x → (x Vᵀᵀ Σ) Uᵀ`` performs exactly the same number of MACs (and stores
   the same number of parameters) as the original dense layer;
3. merging ``Σ`` into ``Vᵀ`` for inference, so the hardware stores just two
   matrices ``A = Σ Vᵀ`` (k×in) and ``B = U`` (out×k).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SVDFactors",
    "svd_decompose",
    "hard_threshold_rank",
    "truncate_factors",
    "merge_sigma",
    "reconstruction_error",
    "factored_mac_count",
    "dense_mac_count",
]


@dataclass
class SVDFactors:
    """Factors of a (possibly truncated) SVD, ``W ≈ U @ diag(s) @ Vt``."""

    u: np.ndarray  # (out, k)
    s: np.ndarray  # (k,), non-negative, descending
    vt: np.ndarray  # (k, in)

    @property
    def rank(self) -> int:
        return len(self.s)

    def reconstruct(self) -> np.ndarray:
        """Dense matrix represented by these factors."""
        return (self.u * self.s) @ self.vt

    def parameter_count(self) -> int:
        """Parameters stored at inference time: A = Σ·Vt plus B = U."""
        return self.u.size + self.vt.size


def svd_decompose(weight: np.ndarray) -> SVDFactors:
    """Full (thin) SVD of a 2-D weight matrix with descending singular values."""
    weight = np.asarray(weight, dtype=float)
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {weight.shape}")
    u, s, vt = np.linalg.svd(weight, full_matrices=False)
    return SVDFactors(u=u, s=s, vt=vt)


def hard_threshold_rank(out_features: int, in_features: int) -> int:
    """The paper's compute-preserving rank ``D_h1·D_h2 / (D_h1 + D_h2)``.

    At this rank the factored GEMV costs ``L·D_h2·D_Th + L·D_Th·D_h1`` MACs,
    equal to the dense ``L·D_h2·D_h1``, and parameter count is preserved.
    """
    if out_features <= 0 or in_features <= 0:
        raise ValueError("feature dimensions must be positive")
    rank = (out_features * in_features) // (out_features + in_features)
    return max(1, rank)


def truncate_factors(factors: SVDFactors, rank: int) -> SVDFactors:
    """Keep the top-``rank`` singular triplets."""
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    rank = min(rank, factors.rank)
    return SVDFactors(
        u=factors.u[:, :rank].copy(),
        s=factors.s[:rank].copy(),
        vt=factors.vt[:rank, :].copy(),
    )


def merge_sigma(factors: SVDFactors) -> tuple[np.ndarray, np.ndarray]:
    """Pre-compute the inference matrices ``A = Σ·Vt`` (k×in), ``B = U`` (out×k).

    This is Fig. 10 step 3: only two matrices are written to the RRAM arrays.
    """
    return factors.s[:, None] * factors.vt, factors.u.copy()


def reconstruction_error(weight: np.ndarray, rank: int) -> float:
    """Relative Frobenius error of the rank-``rank`` approximation."""
    factors = truncate_factors(svd_decompose(weight), rank)
    diff = weight - factors.reconstruct()
    denom = np.linalg.norm(weight)
    return float(np.linalg.norm(diff) / max(denom, 1e-12))


def dense_mac_count(seq_len: int, out_features: int, in_features: int) -> int:
    """MACs of the dense layer over a length-``seq_len`` input."""
    return seq_len * out_features * in_features


def factored_mac_count(seq_len: int, out_features: int, in_features: int, rank: int) -> int:
    """MACs of the two factored GEMVs over a length-``seq_len`` input."""
    return seq_len * rank * in_features + seq_len * out_features * rank
