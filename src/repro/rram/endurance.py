"""RRAM endurance / lifetime model (Section 5.2's sustainability argument).

Analog arrays hold *static* weights — programmed once per deployment — so
they are endurance-free.  Digital PIM arrays absorb the real-time Q/K/V and
intermediate writes; the paper argues that with ~10 K daily inference
requests, typical endurance of 1e8 cycles, and HyFlexPIM's large digital
capacity, wear-out exceeds server lifetimes (3-5 years).  This module makes
that argument computable (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rram.cell import RramDeviceParams

__all__ = ["EnduranceModel", "WearLedger", "WearReport"]

_DAYS_PER_YEAR = 365.25


@dataclass
class WearReport:
    """Computed wear statistics for a digital PIM deployment."""

    writes_per_cell_per_day: float
    lifetime_years: float
    sustains_server_lifetime: bool


@dataclass
class EnduranceModel:
    """Wear-levelled endurance estimate for the digital PIM storage.

    Parameters
    ----------
    capacity_bytes:
        Total digital RRAM capacity available for intermediate data.
    endurance_cycles:
        Per-cell write endurance (default: 1e8, Grossi et al.).
    server_lifetime_years:
        Threshold the deployment must outlive (paper: 3-5 years; we use 5).
    """

    capacity_bytes: int
    endurance_cycles: float = RramDeviceParams().endurance_cycles
    server_lifetime_years: float = 5.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive")

    def report(
        self, bytes_written_per_inference: float, inferences_per_day: float
    ) -> WearReport:
        """Lifetime under uniform wear levelling across the capacity."""
        if bytes_written_per_inference < 0 or inferences_per_day < 0:
            raise ValueError("write volume and request rate must be non-negative")
        daily_bytes = bytes_written_per_inference * inferences_per_day
        writes_per_cell_per_day = daily_bytes / self.capacity_bytes
        if writes_per_cell_per_day == 0:
            lifetime = float("inf")
        else:
            lifetime = self.endurance_cycles / writes_per_cell_per_day / _DAYS_PER_YEAR
        return WearReport(
            writes_per_cell_per_day=writes_per_cell_per_day,
            lifetime_years=lifetime,
            sustains_server_lifetime=lifetime >= self.server_lifetime_years,
        )


@dataclass
class WearLedger:
    """Write-traffic ledger for crossbar backends (per-tile wear accounting).

    A :class:`~repro.rram.backend.CrossbarBackend` records every write it
    performs here: initial programming and re-programming of weight tiles
    (each write event costs ``cell.write_pulses`` verify-program pulses per
    cell), partial *region* writes issued by dynamic operands (runtime
    tensors such as crossbar-resident KV caches, appended a few rows at a
    time), plus background dynamic-data write cycles applied via the
    backend's ``advance(writes=...)`` clock.  The ledger is the single
    source of truth the wear model, the health reports and the endurance
    round-trip tests read from.

    Invariants: ``programs`` counts first-time programs, ``reprograms``
    re-writes, ``dynamic_writes`` partial region writes;
    ``pulses_per_cell[tile_id]`` is the cumulative per-cell pulse count of
    that tile's *whole-tile* write events; ``dynamic_write_pulses[tile_id]``
    is the cumulative ``cells_written x pulses`` total of that tile's
    region writes (spread across the tile under wear levelling);
    ``total_write_pulses`` equals ``sum(pulses_per_cell[t] * cells[t])``
    plus ``sum(dynamic_write_pulses[t])`` over all tiles.
    """

    endurance_cycles: float = RramDeviceParams().endurance_cycles
    programs: int = 0
    reprograms: int = 0
    dynamic_writes: int = 0
    background_cycles: float = 0.0
    pulses_per_cell: dict[int, int] = field(default_factory=dict)
    cells: dict[int, int] = field(default_factory=dict)
    dynamic_write_pulses: dict[int, int] = field(default_factory=dict)

    def record_program(
        self, tile_id: int, num_cells: int, pulses: int, reprogram: bool = False
    ) -> None:
        """Record one (re)program of ``num_cells`` cells at ``pulses`` each.

        ``pulses`` is the cell type's verify-program pulse count (1 for
        SLC, up to 16 for MLC4); ``reprogram`` selects which event counter
        increments.  Raises ``ValueError`` on non-positive sizes.
        """
        if num_cells <= 0 or pulses <= 0:
            raise ValueError("num_cells and pulses must be positive")
        if reprogram:
            self.reprograms += 1
        else:
            self.programs += 1
        self.pulses_per_cell[tile_id] = self.pulses_per_cell.get(tile_id, 0) + pulses
        self.cells[tile_id] = num_cells

    def record_region(self, tile_id: int, cells_written: int, pulses: int) -> None:
        """Record one partial region write of ``cells_written`` cells.

        Dynamic operands (crossbar-resident KV caches, streamed MoE
        experts) append a few rows at a time instead of re-writing whole
        tiles; each appended cell costs the cell type's ``pulses``
        verify-program pulses.  Region writes accumulate in a dedicated
        per-tile channel so runtime write wear stays separable from
        deploy-time programming.  Raises ``ValueError`` on non-positive
        sizes.
        """
        if cells_written <= 0 or pulses <= 0:
            raise ValueError("cells_written and pulses must be positive")
        self.dynamic_writes += 1
        self.dynamic_write_pulses[tile_id] = (
            self.dynamic_write_pulses.get(tile_id, 0) + cells_written * pulses
        )

    def record_background(self, cycles: float) -> None:
        """Add ``cycles`` background write cycles per cell (dynamic traffic)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.background_cycles += float(cycles)

    @property
    def total_write_pulses(self) -> int:
        """Total write pulses across all tiles (program + re-program + region)."""
        whole_tile = sum(
            self.pulses_per_cell[tile_id] * self.cells[tile_id]
            for tile_id in self.pulses_per_cell
        )
        return whole_tile + sum(self.dynamic_write_pulses.values())

    def wear_fraction(self, tile_id: int) -> float:
        """Fraction of ``tile_id``'s per-cell endurance consumed so far.

        Counts the tile's own whole-tile write pulses, its region-write
        pulses spread uniformly over the tile's cells (wear levelling —
        dynamic operands rotate appended rows across the physical array),
        and the backend-wide background cycles; 0.0 for unknown tiles.
        """
        per_cell = self.pulses_per_cell.get(tile_id, 0) + self.background_cycles
        dynamic = self.dynamic_write_pulses.get(tile_id, 0)
        if dynamic:
            per_cell += dynamic / max(1, self.cells.get(tile_id, 1))
        return per_cell / self.endurance_cycles

    def report(self) -> dict:
        """JSON-friendly snapshot of the ledger's totals."""
        tracked = set(self.pulses_per_cell) | set(self.dynamic_write_pulses)
        return {
            "programs": self.programs,
            "reprograms": self.reprograms,
            "dynamic_writes": self.dynamic_writes,
            "tiles": len(self.cells),
            "total_write_pulses": self.total_write_pulses,
            "dynamic_write_pulses": int(sum(self.dynamic_write_pulses.values())),
            "background_cycles": self.background_cycles,
            "max_wear_fraction": max(
                (self.wear_fraction(t) for t in tracked), default=0.0
            ),
        }
