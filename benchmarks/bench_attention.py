"""Analog-attention benchmark: dynamic-operand crossbar serving.

Serves identical ragged prompt sets through a float-host engine, an
analog deployment (``deploy(attention="analog")`` — QK^T and AV as
crossbar GEMVs over MLC dynamic operands) and the quantized numpy
reference across a batch grid, measuring tokens/s, token agreement and
KV-write wear.  The payload is written to ``BENCH_attention.json`` at
the repo root — the attention perf-trajectory file CI uploads as an
artifact and gates on: noiseless analog tokens bitwise equal to the
quantized reference at every batch point, wear counters strictly
monotone across the grid, and positive finite KV-write wear per token.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exp import ExperimentSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_attention.json"


def test_bench_attention(benchmark, print_header, fresh_runner):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    params = (
        {"attention_batches": (1, 2), "attention_new_tokens": 6, "reps": 1}
        if smoke
        else {}
    )
    spec = ExperimentSpec("bench_attention", params=params)

    result = benchmark.pedantic(
        lambda: fresh_runner.run(spec), rounds=1, iterations=1
    )
    value = result.value

    print_header("Analog attention — host vs MLC dynamic-operand crossbar (tokens/s)")
    print(
        f"{'batch':>5} {'new':>4} {'host':>9} {'analog':>9} "
        f"{'slowdown':>9} {'ref agree':>10} {'host agree':>11}"
    )
    for row in value["grid"]:
        print(
            f"{row['batch']:>5} {row['new_tokens']:>4} {row['host_tok_s']:>9.0f} "
            f"{row['analog_tok_s']:>9.0f} {row['analog_over_host']:>8.2f}x "
            f"{row['reference_agreement']:>10.2f} {row['host_agreement']:>11.2f}"
        )
    wear = value["wear"]
    print(
        f"\nKV-write wear: {wear['kv_tokens_written']} tokens cached, "
        f"{wear['write_pulses_per_token']:.0f} write pulses/token, "
        f"max wear {wear['max_wear_fraction_per_1k_tokens']:.3g} per 1k tokens"
    )

    if smoke:
        # Never clobber the committed full-grid trajectory with a smoke grid.
        print("smoke mode: skipping BENCH_attention.json update")
    else:
        BENCH_PATH.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BENCH_PATH}")

    # Perf-trajectory gates (ISSUE 8 acceptance criteria): the noiseless
    # analog deployment must emit exactly the quantized reference's tokens
    # at every batch point, the wear counters must have grown strictly
    # monotonically across the grid (every KV write accounted), and the
    # per-token wear must be positive and finite.
    gate = value["gate"]
    assert gate["noiseless_reference_agreement"] == 1.0, gate
    assert all(row["reference_agreement"] == 1.0 for row in value["grid"]), value["grid"]
    assert gate["wear_monotone"], gate
    snapshots = gate["wear_snapshots"]
    for prev, cur in zip(snapshots, snapshots[1:]):
        assert cur["kv_tokens_written"] > prev["kv_tokens_written"], snapshots
        assert cur["dynamic_write_pulses"] > prev["dynamic_write_pulses"], snapshots
    assert 0 < wear["write_pulses_per_token"] < float("inf"), wear
    assert wear["max_wear_fraction_per_1k_tokens"] > 0, wear
