"""Non-PIM baseline: digital INT8 processor fed from off-chip DRAM.

Section 5.3's baseline 5: dot-product units derived from SPRINT's digital
datapath, with all weights streamed DRAM -> SRAM cache -> datapath.  Its
energy is dominated by off-chip movement at short sequence lengths (weights
are not amortized) and by MAC + SRAM energy at long ones — which is exactly
why the normalized PIM advantage in Fig. 14 shrinks as N grows.
"""

from __future__ import annotations

from repro.arch.baselines.base import BaselineModel
from repro.arch.energy import EnergyBreakdown
from repro.models.configs import ModelSpec

__all__ = ["NonPimBaseline"]


class NonPimBaseline(BaselineModel):
    name = "non-pim"

    def linear_layers_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        c = self.costs
        macs = self._linear_macs(spec, seq_len)
        weight_bytes = self._weight_bytes(spec)
        breakdown = EnergyBreakdown()
        # Weights cross DRAM once per inference pass, then feed the datapath
        # through SRAM on every use.
        breakdown.add("dram_access", weight_bytes * c.dram_pj_per_byte)
        breakdown.add("sram_access", macs * c.sram_pj_per_byte)
        breakdown.add("mac_digital", macs * c.mac_int8_pj)
        return breakdown

    def end_to_end_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        c = self.costs
        breakdown = self.linear_layers_energy(spec, seq_len)
        attn_macs = self._attention_macs(spec, seq_len)
        # KV operands move through SRAM; scores computed on the datapath.
        breakdown.add("mac_digital", attn_macs * c.mac_int8_pj)
        breakdown.add("sram_access", attn_macs * c.sram_pj_per_byte)
        # Softmax & norms on the datapath's vector unit (INT8->FP16 mix).
        softmax_elems = float(spec.num_heads * seq_len**2 * spec.num_layers)
        breakdown.add("mac_digital", 5 * softmax_elems * c.mac_int8_pj)
        return breakdown

    def inference_time_s(self, spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
        return self._streaming_time_s(
            spec, seq_len, mode, self.costs.dram_bandwidth_gbps
        )
