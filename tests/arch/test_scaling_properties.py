"""Property tests for the Fig. 17 scalability model (ISSUE-5 satellite).

``test_interconnect_scaling.py`` pins the paper's specific numbers; these
hypothesis-driven tests pin the model's *shape* over the configuration
space the mesh planner relies on:

- ``ScalingReport.fits`` is monotone in ``num_chips`` — once a deployment
  fits, adding chips can never make it stop fitting;
- throughput (and hence the normalized curve) is non-decreasing in the PUs
  devoted to each layer, as long as the PU budget actually holds them
  (``num_layers x pus_per_layer <= num_chips x 24`` — beyond the budget
  extra "ways" only add OCI aggregation cost, which the paper's own
  near-linear-with-shave curve reflects).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.scaling import ScalabilityModel
from repro.models.configs import ModelSpec

MODEL = ScalabilityModel()


def make_spec(num_layers: int, d_model: int, d_ff_mult: int) -> ModelSpec:
    return ModelSpec(
        name="prop",
        kind="decoder",
        num_layers=num_layers,
        d_model=d_model,
        num_heads=2,
        d_ff=d_model * d_ff_mult,
        vocab_size=1000,
        max_seq_len=8192,
    )


spec_strategy = st.builds(
    make_spec,
    num_layers=st.integers(min_value=1, max_value=24),
    d_model=st.sampled_from([64, 256, 768, 2048]),
    d_ff_mult=st.sampled_from([2, 4]),
)


class TestFitsMonotoneInChips:
    @settings(max_examples=40, deadline=None)
    @given(
        spec=spec_strategy,
        slc_rate=st.sampled_from([0.0, 0.1, 0.3, 1.0]),
        seq_len=st.sampled_from([512, 4096, 8192]),
        chips=st.integers(min_value=1, max_value=8),
    )
    def test_fitting_deployment_still_fits_with_more_chips(
        self, spec, slc_rate, seq_len, chips
    ):
        first = MODEL.throughput(spec, seq_len, slc_rate, chips)
        second = MODEL.throughput(spec, seq_len, slc_rate, chips + 1)
        assert (not first.fits) or second.fits

    @settings(max_examples=20, deadline=None)
    @given(spec=spec_strategy, slc_rate=st.sampled_from([0.1, 0.5]))
    def test_min_chips_is_the_fit_threshold(self, spec, slc_rate):
        """min_chips' answer fits; one chip fewer (if any) does not."""
        needed = MODEL.min_chips(spec, slc_rate, 4096)
        ppl = MODEL.min_pus_per_layer(spec, slc_rate)
        assert MODEL.throughput(spec, 4096, slc_rate, needed, pus_per_layer=ppl).fits
        if needed > 1:
            report = MODEL.throughput(
                spec, 4096, slc_rate, needed - 1, pus_per_layer=ppl
            )
            assert not report.fits


class TestThroughputMonotoneInPus:
    @settings(max_examples=40, deadline=None)
    @given(
        spec=spec_strategy,
        slc_rate=st.sampled_from([0.0, 0.2, 1.0]),
        seq_len=st.sampled_from([512, 8192]),
        pus=st.integers(min_value=1, max_value=12),
        chips=st.integers(min_value=1, max_value=4),
    )
    def test_tokens_per_second_non_decreasing_in_pus_per_layer(
        self, spec, slc_rate, seq_len, pus, chips
    ):
        if spec.num_layers * (pus + 1) > chips * MODEL.hardware.num_pus:
            return  # beyond the PU budget the extra ways are not realizable
        low = MODEL.throughput(spec, seq_len, slc_rate, chips, pus_per_layer=pus)
        high = MODEL.throughput(spec, seq_len, slc_rate, chips, pus_per_layer=pus + 1)
        assert high.tokens_per_second >= low.tokens_per_second * (1 - 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(spec=spec_strategy, slc_rate=st.sampled_from([0.1, 0.4]))
    def test_normalized_curve_non_decreasing_within_budget(self, spec, slc_rate):
        """The normalized Fig. 17 series rises with PUs per layer."""
        budget = MODEL.hardware.num_pus // spec.num_layers
        ways = [w for w in (1, 2, 4) if w <= max(1, budget)]
        if len(ways) < 2:
            return
        rates = [
            MODEL.throughput(spec, 4096, slc_rate, 1, pus_per_layer=w).tokens_per_second
            for w in ways
        ]
        normalized = [r / rates[0] for r in rates]
        assert normalized == sorted(normalized)
