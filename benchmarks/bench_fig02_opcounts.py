"""Fig. 2: operation counts per Transformer stage versus sequence length."""

from __future__ import annotations

from repro.arch import STAGES
from repro.exp import ExperimentSpec

SEQ_LENS = (128, 512, 1024, 2048, 3072)


def test_fig02_stage_op_counts(benchmark, print_header, fresh_runner):
    spec = ExperimentSpec("fig02", params={"model": "bert-base", "seq_lens": SEQ_LENS})

    result = benchmark(lambda: fresh_runner.run(spec))
    print_header("Fig. 2 — operations per stage vs sequence length (BERT-Base, x1e8)")
    print(f"{'stage':>10} " + " ".join(f"N={n:>6}" for n in SEQ_LENS))
    for stage in STAGES:
        values = [count / 1e8 for count in result["stages"][stage]]
        print(f"{stage:>10} " + " ".join(f"{v:>8.1f}" for v in values))
    shares = dict(zip(result["seq_lens"], result["linear_share"]))
    print("\nlinear-stage share: " + ", ".join(f"N={n}: {s * 100:.0f}%" for n, s in shares.items()))
    print("paper: static-weight (linear) stages dominate (>70%) at short N;")
    print("       score/PV stages overtake as N grows (quadratic terms).")
