"""Analog RRAM PIM module (Fig. 5(c)): 512 reconfigurable SLC/MLC arrays.

One analog module owns 512 crossbar arrays of 64x128 cells plus their
peripherals (IR/OR registers, wordline drivers, sample-and-hold bank, a
shared 6/7-bit reconfigurable SAR ADC per array, shift-and-add).  Static
weight matrices are *deployed* onto a module's arrays; the module enforces
its array budget and aggregates the operation statistics the energy model
consumes.

A single module mixes SLC-configured and MLC-configured arrays freely: the
paper's reconfigurability means switching costs <1 % area/energy, realized
here by each :class:`~repro.rram.mapping.MappedMatrix` carrying its own cell
type and ADC mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rram.backend import CrossbarBackend
from repro.rram.cell import CellType
from repro.rram.crossbar import CrossbarConfig, GemvStats
from repro.rram.kernels import KernelPolicy
from repro.rram.mapping import MappedMatrix
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec

__all__ = ["AnalogModuleConfig", "AnalogPimModule"]


@dataclass(frozen=True)
class AnalogModuleConfig:
    """Geometry of one analog PIM module (Table 2)."""

    num_arrays: int = 512
    array: CrossbarConfig = field(default_factory=CrossbarConfig)
    adc_sample_rate_hz: float = 1.28e9  # one ADC per array, 1.28 GSps
    conversion_window_ns: float = 100.0  # 128 bitlines converted per 100 ns

    @property
    def cells_per_array(self) -> int:
        return self.array.rows * self.array.cols

    def slc_capacity_bytes(self) -> int:
        """Module capacity with every array in SLC mode."""
        return self.num_arrays * self.cells_per_array // 8


class AnalogPimModule:
    """Holds deployed weight matrices and executes their GEMVs."""

    def __init__(
        self,
        config: AnalogModuleConfig | None = None,
        noise: NoiseSpec | None = None,
        seed: int = 0,
        policy: KernelPolicy | None = None,
        backend: CrossbarBackend | None = None,
    ) -> None:
        self.config = config or AnalogModuleConfig()
        self.noise = noise or DEFAULT_NOISE
        self.seed = seed
        self.policy = policy
        self.backend = backend
        self._deployed: dict[str, MappedMatrix] = {}
        self._arrays_used = 0

    # -- deployment -----------------------------------------------------------
    @property
    def arrays_used(self) -> int:
        return self._arrays_used

    @property
    def arrays_free(self) -> int:
        return self.config.num_arrays - self._arrays_used

    def deploy(self, name: str, weight_codes: np.ndarray, cell: CellType) -> MappedMatrix:
        """Program a weight matrix onto this module's arrays.

        Raises :class:`MemoryError` when the array budget is exceeded —
        callers (the PU/chip mappers) then spill to another module.
        """
        if name in self._deployed:
            raise KeyError(f"matrix {name!r} already deployed")
        import zlib

        mapped = MappedMatrix(
            weight_codes=np.asarray(weight_codes),
            cell=cell,
            noise=self.noise,
            config=self.config.array,
            seed=self.seed + (zlib.crc32(name.encode()) % (2**16)),
            policy=self.policy,
            backend=self.backend,
        )
        if mapped.arrays_used > self.arrays_free:
            raise MemoryError(
                f"analog module full: {name!r} needs {mapped.arrays_used} arrays, "
                f"{self.arrays_free} free of {self.config.num_arrays}"
            )
        self._arrays_used += mapped.arrays_used
        self._deployed[name] = mapped
        return mapped

    def matrix(self, name: str) -> MappedMatrix:
        return self._deployed[name]

    def names(self) -> list[str]:
        return sorted(self._deployed)

    # -- execution --------------------------------------------------------------
    def gemv(
        self, name: str, input_codes: np.ndarray, policy: KernelPolicy | None = None
    ) -> np.ndarray:
        """Run one deployed matrix's analog GEMV."""
        return self._deployed[name].gemv(input_codes, policy=policy)

    def merged_stats(self) -> GemvStats:
        total = GemvStats()
        for mapped in self._deployed.values():
            total.merge(mapped.stats)
        return total

    def utilization(self) -> float:
        """Fraction of the module's arrays holding weights."""
        return self._arrays_used / self.config.num_arrays

    def gemv_latency_ns(self, input_bits: int = 8) -> float:
        """Pipelined latency of one GEMV wave (Section 5.4).

        Each input-bit cycle the crossbar reads while the previous cycle's
        128 bitline samples convert in the shared ADC — 100 ns per wave.
        Row tiles sit on different arrays with their own ADCs, so they
        convert concurrently and do not lengthen the wave.
        """
        waves = input_bits + 1  # +1 to drain the ADC pipeline
        return waves * self.config.conversion_window_ns
