"""HyFlexPIM public API: compile -> deploy -> evaluate."""

from repro.core.hyflexpim import CompiledModel, HyFlexPim

__all__ = ["CompiledModel", "HyFlexPim"]
