"""Area aggregation and area-efficiency metrics (Table 2, Fig. 16's TOPS/mm²)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import DEFAULT_HARDWARE, HardwareConfig, ModuleSpec

__all__ = ["AreaReport", "area_report", "table2_rows"]


@dataclass
class AreaReport:
    """Chip-level area and power roll-up."""

    analog_module_mm2: float
    digital_module_mm2: float
    pu_mm2: float
    chip_mm2: float
    analog_module_mw: float
    digital_module_mw: float
    pu_mw: float
    chip_mw: float


def area_report(hardware: HardwareConfig | None = None) -> AreaReport:
    hw = hardware or DEFAULT_HARDWARE
    return AreaReport(
        analog_module_mm2=hw.analog.module_area_mm2(),
        digital_module_mm2=hw.digital.module_area_mm2(),
        pu_mm2=hw.pu_area_mm2(),
        chip_mm2=hw.chip_area_mm2(),
        analog_module_mw=hw.analog.module_power_mw(),
        digital_module_mw=hw.digital.module_power_mw(),
        pu_mw=hw.pu_power_mw(),
        chip_mw=hw.num_pus * hw.pu_power_mw(),
    )


def table2_rows(module: ModuleSpec) -> list[dict[str, float | str | int]]:
    """Regenerate the rows of Table 2 for one module type."""
    rows: list[dict[str, float | str | int]] = []
    area_total = module.module_area_mm2()
    power_total = module.module_power_mw()
    for comp in module.components:
        rows.append(
            {
                "component": comp.name,
                "area_mm2": comp.area_mm2,
                "area_share": comp.area_mm2 / area_total,
                "power_mw": comp.power_mw,
                "power_share": comp.power_mw / power_total,
                "count": comp.count,
                "note": comp.note,
            }
        )
    rows.append(
        {
            "component": "sum",
            "area_mm2": area_total,
            "area_share": 1.0,
            "power_mw": power_total,
            "power_share": 1.0,
            "count": 1,
            "note": "",
        }
    )
    rows.append(
        {
            "component": "total_per_pu",
            "area_mm2": area_total * module.modules_per_pu,
            "area_share": float(module.modules_per_pu),
            "power_mw": power_total * module.modules_per_pu,
            "power_share": float(module.modules_per_pu),
            "count": module.modules_per_pu,
            "note": f"{module.modules_per_pu} modules per PU",
        }
    )
    return rows
