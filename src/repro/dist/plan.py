"""ShardPlan: tensor/pipeline-parallel placement over a :class:`DeviceMesh`.

Two axes of parallelism, straight from paper Section 3.1:

- **Tensor parallelism (cases 1-2)** — each crossbar-deployed layer's rank
  dimension is partitioned into ``tensor_parallel`` contiguous shards
  (:func:`repro.rram.mapping.partition_rank`); shard ``s`` holds rows
  ``[start, stop)`` of ``A`` and columns ``[start, stop)`` of ``B``, and
  the per-shard stage-2 partial sums are aggregated over the OCI.
- **Pipeline parallelism (case 3)** — whole Transformer blocks are
  assigned to chips contiguously; each chip boundary costs one
  hidden-vector PCIe-6.0 handoff per token.

Placement is **derived from the existing** :class:`~repro.pim.chip.HyFlexPimChip`
mapper rather than re-invented: every (chip, shard) pair gets its own
capacity-checked mapper over its slice of the chip's PUs, and the per-shard
rank-sliced :class:`~repro.svd.pipeline.LayerPlan`\\ s are placed through the
same first-fit logic (and raise the same :class:`MemoryError` when a mesh
is too small — the signal to scale out).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dist.mesh import DeviceMesh
from repro.pim.chip import ChipConfig, HyFlexPimChip, group_layers_by_block
from repro.rram.cell import CellType, MLC2
from repro.rram.mapping import partition_rank, partition_rank_compacted
from repro.rram.noise import NoiseSpec
from repro.svd.pipeline import LayerPlan

__all__ = [
    "LayerShardAssignment",
    "ShardPlan",
    "compacted_tile_aligned",
    "shard_layer_plan",
]


def compacted_tile_aligned(
    protected: np.ndarray, rank_slices: list[tuple[int, int]], tile: int
) -> bool:
    """Whether shard boundaries stay tile-aligned after SLC/MLC compaction.

    :func:`~repro.rram.mapping.split_by_rank` compacts a layer's protected
    and unprotected ranks into *separate* matrices before tiling, so the
    accumulation-tile boundaries the ADC clips at live in compacted space.
    A shard boundary at logical rank ``b`` preserves the unsharded tiling
    only when both the number of protected ranks below ``b`` and the number
    of unprotected ranks below ``b`` are multiples of ``tile`` — then every
    shard's matrices start on a whole-tile boundary of the unsharded
    compacted matrices.  Where that fails, a sharded deployment silently
    falls back to sub-tile accumulation: still exact for saturation-free
    GEMVs, but divergent from the unsharded mapping wherever an MLC bitline
    saturates.  :meth:`ShardPlan.build` surfaces this per layer as
    :attr:`LayerShardAssignment.tile_aligned`.
    """
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    protected = np.asarray(protected, dtype=bool)
    prefix_protected = np.concatenate([[0], np.cumsum(protected)])
    for _, stop in rank_slices[:-1]:
        n_protected = int(prefix_protected[stop])
        if n_protected % tile or (stop - n_protected) % tile:
            return False
    return True


def _compacted_aligned_slices(
    plan: LayerPlan, parts: int, tile: int
) -> list[tuple[int, int]]:
    """Rank slices for one layer, compacted-aligned whenever reachable.

    The plain :func:`~repro.rram.mapping.partition_rank` slices win when
    they are already aligned in compacted SLC/MLC space — that keeps every
    historically-aligned layer's boundaries byte-identical.  Only layers
    that would fall back to sub-tile accumulation retry with
    :func:`~repro.rram.mapping.partition_rank_compacted`; the retry is
    accepted when it exists, matches the plain shard count (so shard-group
    placement keeps its shape), and stays reasonably balanced (no shard
    wider than twice the plain maximum, which would shift capacity
    pressure onto one PU group).
    """
    plain = partition_rank(plan.rank, parts, tile=tile)
    if compacted_tile_aligned(plan.protected_ranks, plain, tile):
        return plain
    aligned = partition_rank_compacted(plan.protected_ranks, parts, tile=tile)
    if aligned is None or len(aligned) != len(plain):
        return plain
    plain_max = max(stop - start for start, stop in plain)
    if max(stop - start for start, stop in aligned) > 2 * plain_max:
        return plain
    return aligned


def shard_layer_plan(plan: LayerPlan, start: int, stop: int) -> LayerPlan:
    """Rank-slice one :class:`LayerPlan` into the shard ``[start, stop)``.

    The bias stays with the logical layer (it is added once, after the
    shards' partial sums recombine), so shard plans carry ``bias=None``.
    """
    return LayerPlan(
        name=plan.name,
        a_matrix=plan.a_matrix[start:stop, :],
        b_matrix=plan.b_matrix[:, start:stop],
        bias=None,
        protected_ranks=plan.protected_ranks[start:stop],
        sigma_gradients=plan.sigma_gradients[start:stop],
    )


@dataclass
class LayerShardAssignment:
    """Where one logical layer's shards landed on the mesh.

    ``tile_aligned`` is False when this layer's shard boundaries fall back
    to sub-tile accumulation in compacted SLC/MLC space (see
    :func:`compacted_tile_aligned`): the sharded mapping then only matches
    the unsharded one where no MLC bitline saturates.
    """

    name: str
    block: int
    chip: int
    rank_slices: list[tuple[int, int]]
    pu_ids: list[list[int]] = field(default_factory=list)  # global ids, per shard
    tile_aligned: bool = True

    @property
    def num_shards(self) -> int:
        """Number of tensor-parallel shards this layer was split into."""
        return len(self.rank_slices)

    def pus_assigned(self) -> set[int]:
        """Global ids of every processing unit holding a shard fragment."""
        return {pu for group in self.pu_ids for pu in group}


@dataclass
class ShardPlan:
    """A complete tensor/pipeline-parallel deployment of one model."""

    mesh: DeviceMesh
    tensor_parallel: int
    layers: dict[str, LayerShardAssignment]
    chip_of_block: dict[int, int]
    arrays_used: int

    # ------------------------------------------------------------------
    @property
    def chips_used(self) -> int:
        """Chips holding at least one Transformer block."""
        return len(set(self.chip_of_block.values())) if self.chip_of_block else 0

    @property
    def pipeline_boundaries(self) -> int:
        """Chip boundaries a token crosses end to end (case 3 handoffs)."""
        return max(0, self.chips_used - 1)

    @property
    def num_blocks(self) -> int:
        """Transformer blocks covered by the plan."""
        return len(self.chip_of_block)

    def pus_assigned(self) -> int:
        """Distinct processing units holding at least one shard fragment."""
        return len({pu for a in self.layers.values() for pu in a.pus_assigned()})

    @property
    def subtile_layers(self) -> list[str]:
        """Layers whose shard boundaries fell back to sub-tile accumulation.

        Sorted names of every layer with ``tile_aligned=False`` — the
        deployments whose sharded GEMVs can diverge from the unsharded
        mapping where an MLC bitline saturates.  Empty means the whole plan
        preserves the unsharded accumulation tiling.
        """
        return sorted(
            name for name, a in self.layers.items() if not a.tile_aligned
        )

    @property
    def fully_tile_aligned(self) -> bool:
        """True when no layer fell back to sub-tile shard boundaries."""
        return not self.subtile_layers

    def describe(self) -> dict:
        """JSON-friendly summary of the deployment's shape and placement."""
        return {
            "num_chips": self.mesh.num_chips,
            "tensor_parallel": self.tensor_parallel,
            "chips_used": self.chips_used,
            "pipeline_boundaries": self.pipeline_boundaries,
            "num_blocks": self.num_blocks,
            "num_layers": len(self.layers),
            "pus_assigned": self.pus_assigned(),
            "arrays_used": self.arrays_used,
            "subtile_fallback_layers": len(self.subtile_layers),
            "fully_tile_aligned": self.fully_tile_aligned,
        }

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        plans: dict[str, LayerPlan],
        mesh: DeviceMesh,
        tensor_parallel: int = 1,
        mlc_cell: CellType = MLC2,
        noise: NoiseSpec | None = None,
        seed: int = 0,
    ) -> "ShardPlan":
        """Derive a shard plan for ``plans`` on ``mesh``.

        Blocks are split contiguously over the mesh's chips (balanced, in
        block order — pipeline order is model order).  Within a chip, that
        chip's PU budget (:meth:`~repro.dist.mesh.DeviceMesh.pu_budget` —
        heterogeneous meshes carry per-chip budgets) is divided into
        ``tensor_parallel`` contiguous groups; shard ``s`` of every layer
        on that chip is placed into group ``s`` by a dedicated
        :class:`HyFlexPimChip` mapper restricted to that group's PU budget.
        A chip whose budget cannot host ``tensor_parallel`` groups raises
        a :class:`ValueError` naming the exhausted chip.
        """
        if tensor_parallel < 1:
            raise ValueError(f"tensor_parallel must be >= 1, got {tensor_parallel}")
        too_small = [
            chip
            for chip in range(mesh.num_chips)
            if mesh.pu_budget(chip) < tensor_parallel
        ]
        if too_small:
            chip = too_small[0]
            raise ValueError(
                f"tensor_parallel={tensor_parallel} exceeds chip {chip}'s "
                f"budget of {mesh.pu_budget(chip)} processing units "
                f"(per-chip budgets: {list(mesh.chip_pus)})"
            )
        groups = group_layers_by_block(plans)
        blocks = list(groups)
        num_chips = min(mesh.num_chips, len(blocks)) or 1
        # Balanced contiguous block -> chip assignment (pipeline order).
        chip_of_block: dict[int, int] = {}
        for position, block in enumerate(blocks):
            chip_of_block[block] = (position * num_chips) // max(1, len(blocks))

        # Global PU ids: chips own contiguous ranges in budget order, so a
        # heterogeneous mesh's ids stay stable and non-overlapping.
        chip_pu_base = [0] * mesh.num_chips
        for chip in range(1, mesh.num_chips):
            chip_pu_base[chip] = chip_pu_base[chip - 1] + mesh.pu_budget(chip - 1)

        layers: dict[str, LayerShardAssignment] = {}
        arrays_used = 0
        for chip in range(num_chips):
            chip_blocks = [b for b in blocks if chip_of_block[b] == chip]
            if not chip_blocks:
                continue
            pus_per_group = mesh.pu_budget(chip) // tensor_parallel
            chip_names = [name for b in chip_blocks for name in groups[b]]
            # Rank slices are a property of each logical layer, shared by
            # every shard group; boundaries align to whole array row tiles
            # whenever possible (shards split mapped arrays, not wordlines).
            # Logical-space alignment is not enough once split_by_rank
            # compacts protected/unprotected ranks into separate matrices,
            # so layers whose balanced boundaries land sub-tile in
            # compacted space retry with compacted-aligned boundaries
            # (already-aligned layers keep their slices untouched).
            slices_of = {
                name: _compacted_aligned_slices(
                    plans[name],
                    tensor_parallel,
                    mesh.hardware.array_rows,
                )
                for name in chip_names
            }
            for name in chip_names:
                block = int(name.split(".")[1])
                layers[name] = LayerShardAssignment(
                    name=name,
                    block=block,
                    chip=chip,
                    rank_slices=slices_of[name],
                    pu_ids=[[] for _ in slices_of[name]],
                    tile_aligned=compacted_tile_aligned(
                        plans[name].protected_ranks,
                        slices_of[name],
                        mesh.hardware.array_rows,
                    ),
                )
            for shard in range(tensor_parallel):
                shard_plans = {}
                for name in chip_names:
                    if shard < len(slices_of[name]):
                        start, stop = slices_of[name][shard]
                        shard_plans[name] = shard_layer_plan(plans[name], start, stop)
                if not shard_plans:
                    continue
                mapper = HyFlexPimChip(
                    config=ChipConfig(
                        num_processing_units=pus_per_group,
                        pu=mesh.chip_config.pu,
                        global_bus_gbps=mesh.chip_config.global_bus_gbps,
                        inner_bus_gbps=mesh.chip_config.inner_bus_gbps,
                    ),
                    noise=noise,
                    seed=seed + 7919 * (chip * tensor_parallel + shard),
                )
                try:
                    assignments = mapper.deploy(shard_plans, mlc_cell=mlc_cell)
                except MemoryError as exc:
                    raise MemoryError(
                        f"mesh exhausted on chip {chip}, shard group {shard} "
                        f"({pus_per_group} of the chip's {mesh.pu_budget(chip)} "
                        f"PUs): {exc}; scale out with more chips or lower "
                        "tensor_parallel"
                    ) from None
                arrays_used += mapper.arrays_used()
                base = chip_pu_base[chip] + shard * pus_per_group
                for assignment in assignments:
                    for name in assignment.matrices:
                        if shard < len(layers[name].rank_slices):
                            layers[name].pu_ids[shard] = [
                                base + local for local in assignment.pu_indices
                            ]
        return cls(
            mesh=mesh,
            tensor_parallel=tensor_parallel,
            layers=layers,
            chip_of_block=chip_of_block,
            arrays_used=arrays_used,
        )
