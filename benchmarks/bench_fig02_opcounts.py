"""Fig. 2: operation counts per Transformer stage versus sequence length."""

from __future__ import annotations

from repro.arch import STAGES, stage_op_counts
from repro.models import paper_model

SEQ_LENS = (128, 512, 1024, 2048, 3072)


def test_fig02_stage_op_counts(benchmark, print_header):
    spec = paper_model("bert-base")

    def build():
        return {n: stage_op_counts(spec, n) for n in SEQ_LENS}

    table = benchmark(build)
    print_header("Fig. 2 — operations per stage vs sequence length (BERT-Base, x1e8)")
    print(f"{'stage':>10} " + " ".join(f"N={n:>6}" for n in SEQ_LENS))
    for stage in STAGES:
        values = [table[n].counts[stage] / 1e8 for n in SEQ_LENS]
        print(f"{stage:>10} " + " ".join(f"{v:>8.1f}" for v in values))
    shares = {n: table[n].linear_total() / table[n].total() for n in SEQ_LENS}
    print("\nlinear-stage share: " + ", ".join(f"N={n}: {s * 100:.0f}%" for n, s in shares.items()))
    print("paper: static-weight (linear) stages dominate (>70%) at short N;")
    print("       score/PV stages overtake as N grows (quadratic terms).")
