"""Shared helpers for the per-figure/table benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the series it produces, so `pytest benchmarks/ --benchmark-only`
doubles as the experiment log (captured into EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import GlueTaskData, make_glue_task
from repro.nn import (
    AdamW,
    BatchIterator,
    EncoderClassifier,
    TransformerConfig,
    cross_entropy,
    mse_loss,
)


def train_mini_encoder(
    data: GlueTaskData,
    num_layers: int = 3,
    d_model: int = 32,
    epochs: int = 5,
    regression: bool = False,
    seed: int = 0,
) -> EncoderClassifier:
    """Train a down-scaled BERT-like encoder on a synthetic GLUE task."""
    config = TransformerConfig(
        vocab_size=data.spec.vocab_size,
        d_model=d_model,
        num_heads=4,
        num_layers=num_layers,
        d_ff=2 * d_model,
        max_seq_len=data.spec.seq_len,
        num_classes=1 if regression else 2,
        seed=seed,
    )
    model = EncoderClassifier(config)
    optimizer = AdamW(model.parameters(), lr=2e-3)
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        for inputs, targets in BatchIterator(data.train, 32, rng=rng):
            logits = model(inputs)
            if regression:
                loss = mse_loss(logits.reshape(-1), targets)
            else:
                loss = cross_entropy(logits, targets.astype(int))
            model.zero_grad()
            loss.backward()
            optimizer.step()
    return model


@pytest.fixture(scope="session")
def print_header(request):
    def _header(title: str) -> None:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")

    return _header
