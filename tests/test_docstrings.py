"""Docstring coverage on the public serving-stack API.

CI enforces pydocstyle (ruff ``D`` rules) on ``repro.rram``,
``repro.serve`` and ``repro.dist``; this AST walk keeps the
missing-docstring core of that contract (D100-D104) inside the tier-1
suite, where it runs without ruff installed: every module and every
public class/function/method in those packages must carry a docstring.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
PACKAGES = ("rram", "serve", "dist")


def _module_files():
    for package in PACKAGES:
        yield from sorted((SRC / package).rglob("*.py"))


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in(node, where: str) -> list[str]:
    """Public defs under ``node`` (module or class) lacking docstrings."""
    missing = []
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not _is_public(child.name):
                continue
            label = f"{where}.{child.name}"
            if ast.get_docstring(child) is None:
                missing.append(label)
            if isinstance(child, ast.ClassDef):
                missing.extend(_missing_in(child, label))
    return missing


@pytest.mark.parametrize(
    "path", list(_module_files()), ids=lambda p: str(p.relative_to(SRC))
)
def test_public_api_is_documented(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    rel = path.relative_to(SRC.parent)
    assert ast.get_docstring(tree) is not None, f"{rel}: missing module docstring"
    missing = _missing_in(tree, str(rel))
    assert missing == [], f"undocumented public API: {missing}"
