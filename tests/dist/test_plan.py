"""Tests for rank partitioning and the mapper-derived ShardPlan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import (
    DeviceMesh,
    ShardPlan,
    compacted_tile_aligned,
    deploy_sharded,
    shard_layer_plan,
)
from repro.pim.chip import ChipConfig, group_layers_by_block
from repro.rram.mapping import ShardSpec, partition_rank, partition_rank_compacted
from repro.svd.pipeline import LayerPlan


def make_plans(rng, num_blocks=2, d=16, ff=32, protected_quarter=True):
    """Synthetic per-block LayerPlans shaped like a tiny Transformer."""
    plans = {}
    for block in range(num_blocks):
        for leaf, (out_f, in_f) in {
            "attn.q": (d, d),
            "ffn1": (ff, d),
        }.items():
            rank = min(out_f, in_f)
            mask = np.zeros(rank, dtype=bool)
            if protected_quarter:
                mask[: max(1, rank // 4)] = True
            name = f"blocks.{block}.{leaf}"
            plans[name] = LayerPlan(
                name=name,
                a_matrix=rng.normal(size=(rank, in_f)) / np.sqrt(in_f),
                b_matrix=rng.normal(size=(out_f, rank)) / np.sqrt(rank),
                bias=rng.normal(size=out_f),
                protected_ranks=mask,
                sigma_gradients=rng.random(rank),
            )
    return plans


class TestPartitionRank:
    def test_balanced_and_contiguous(self):
        slices = partition_rank(10, 4)
        assert slices == [(0, 2), (2, 5), (5, 7), (7, 10)]
        widths = [b - a for a, b in slices]
        assert max(widths) - min(widths) <= 1

    def test_drops_empty_slices(self):
        assert partition_rank(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_single_part_is_identity(self):
        assert partition_rank(7, 1) == [(0, 7)]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_rank(-1, 2)
        with pytest.raises(ValueError):
            partition_rank(4, 0)


class TestShardSpec:
    def test_width(self):
        spec = ShardSpec(index=1, count=4, start=4, stop=8, logical_rank=16)
        assert spec.width == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(index=4, count=4, start=0, stop=4, logical_rank=16)
        with pytest.raises(ValueError):
            ShardSpec(index=0, count=1, start=8, stop=4, logical_rank=16)


class TestShardLayerPlan:
    def test_slices_rank_dim_and_drops_bias(self, rng):
        plans = make_plans(rng)
        plan = plans["blocks.0.attn.q"]
        shard = shard_layer_plan(plan, 4, 12)
        assert shard.a_matrix.shape == (8, plan.a_matrix.shape[1])
        assert shard.b_matrix.shape == (plan.b_matrix.shape[0], 8)
        assert shard.bias is None
        np.testing.assert_array_equal(shard.protected_ranks, plan.protected_ranks[4:12])
        np.testing.assert_array_equal(shard.a_matrix, plan.a_matrix[4:12])


class TestGroupLayersByBlock:
    def test_groups_and_sorts(self):
        groups = group_layers_by_block(["blocks.1.a", "blocks.0.b", "blocks.0.a"])
        assert list(groups) == [0, 1]
        assert groups[0] == ["blocks.0.b", "blocks.0.a"]

    def test_rejects_foreign_names(self):
        with pytest.raises(ValueError):
            group_layers_by_block(["embedding.weight"])


class TestShardPlanBuild:
    def test_single_chip_single_way(self, rng):
        plans = make_plans(rng)
        plan = ShardPlan.build(plans, DeviceMesh())
        assert plan.tensor_parallel == 1
        assert plan.chips_used == 1
        assert plan.pipeline_boundaries == 0
        assert set(plan.layers) == set(plans)
        assert plan.arrays_used > 0
        # Two blocks pipeline onto two PUs of one chip.
        assert plan.pus_assigned() >= 2

    def test_tensor_parallel_partitions_every_layer(self, rng):
        plans = make_plans(rng)
        plan = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=4)
        for assignment in plan.layers.values():
            assert assignment.num_shards == 4
            covered = [s for pair in assignment.rank_slices for s in pair]
            assert covered[0] == 0
            assert covered[-1] == plans[assignment.name].rank
        # Shard groups occupy disjoint PU ranges.
        for assignment in plan.layers.values():
            flat = [pu for group in assignment.pu_ids for pu in group]
            assert len(flat) == len(set(flat))

    def test_more_ways_assign_more_pus(self, rng):
        plans = make_plans(rng)
        one = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=1)
        four = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=4)
        assert four.pus_assigned() > one.pus_assigned()

    def test_pipeline_splits_blocks_over_chips(self, rng):
        plans = make_plans(rng, num_blocks=4)
        plan = ShardPlan.build(plans, DeviceMesh(num_chips=2))
        assert plan.chips_used == 2
        assert plan.pipeline_boundaries == 1
        chips = [plan.chip_of_block[b] for b in sorted(plan.chip_of_block)]
        assert chips == sorted(chips)  # contiguous, in block order
        assert chips == [0, 0, 1, 1]

    def test_excess_chips_stay_idle(self, rng):
        plans = make_plans(rng, num_blocks=2)
        plan = ShardPlan.build(plans, DeviceMesh(num_chips=8))
        assert plan.chips_used == 2

    def test_describe_payload(self, rng):
        plans = make_plans(rng)
        plan = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=2)
        desc = plan.describe()
        assert desc["tensor_parallel"] == 2
        assert desc["num_layers"] == len(plans)
        assert desc["pus_assigned"] == plan.pus_assigned()

    def test_validation(self, rng):
        plans = make_plans(rng)
        with pytest.raises(ValueError):
            ShardPlan.build(plans, DeviceMesh(), tensor_parallel=0)
        with pytest.raises(ValueError):
            ShardPlan.build(plans, DeviceMesh(), tensor_parallel=25)

    def test_exhausted_mesh_raises_memoryerror(self, rng):
        plans = make_plans(rng, num_blocks=3)
        tiny = ChipConfig(num_processing_units=1)
        mesh = DeviceMesh(chip_config=tiny)
        with pytest.raises(MemoryError, match="scale out"):
            ShardPlan.build(plans, mesh)


class TestCompactedTileAlignment:
    """Regression: sub-tile shard boundaries are surfaced, not silent."""

    def test_aligned_when_both_compacted_counts_hit_tile_boundaries(self):
        protected = np.zeros(16, dtype=bool)
        protected[:8] = True  # boundary at 8: 8 protected, 0 unprotected
        assert compacted_tile_aligned(protected, [(0, 8), (8, 16)], tile=4)

    def test_misaligned_when_protected_prefix_is_not_a_tile_multiple(self):
        protected = np.zeros(16, dtype=bool)
        protected[:6] = True  # boundary at 8: 6 protected, 2 unprotected
        assert not compacted_tile_aligned(protected, [(0, 8), (8, 16)], tile=4)

    def test_misaligned_when_unprotected_prefix_is_not_a_tile_multiple(self):
        protected = np.zeros(16, dtype=bool)
        protected[:4] = True  # boundary at 10: 4 protected, 6 unprotected
        assert not compacted_tile_aligned(protected, [(0, 10), (10, 16)], tile=4)

    def test_single_shard_has_no_interior_boundary(self):
        protected = np.ones(5, dtype=bool)
        assert compacted_tile_aligned(protected, [(0, 5)], tile=64)

    def test_tile_of_one_is_always_aligned(self):
        protected = np.zeros(7, dtype=bool)
        protected[::2] = True
        assert compacted_tile_aligned(protected, [(0, 3), (3, 7)], tile=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            compacted_tile_aligned(np.zeros(4, dtype=bool), [(0, 4)], tile=0)

    def test_build_flags_subtile_fallback_layers(self, rng):
        # Rank-16 layers sharded 2-way over 64-row arrays force every
        # boundary into compacted sub-tile space.
        plans = make_plans(rng)
        plan = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=2)
        assert not plan.fully_tile_aligned
        assert plan.subtile_layers == sorted(plans)
        for assignment in plan.layers.values():
            assert not assignment.tile_aligned
        desc = plan.describe()
        assert desc["subtile_fallback_layers"] == len(plans)
        assert desc["fully_tile_aligned"] is False

    def test_unsharded_build_is_fully_aligned(self, rng):
        plans = make_plans(rng)
        plan = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=1)
        assert plan.fully_tile_aligned
        assert plan.subtile_layers == []
        assert plan.describe()["subtile_fallback_layers"] == 0


class TestCompactedAlignedPartitioning:
    """Niggle regression: unaligned boundaries retry in compacted space.

    ``ShardPlan.build`` used to take :func:`partition_rank`'s logical-space
    balanced boundaries as final, so any layer whose protected/unprotected
    prefix counts missed a tile multiple at the balanced split silently
    fell back to sub-tile accumulation.  Now such layers retry with
    :func:`partition_rank_compacted` and ``describe()`` reports fewer
    ``subtile_fallback_layers`` — while already-aligned layers keep their
    historical slices byte-identical.
    """

    #: protected ranks [0, 1, 8, 9] of a rank-16 layer on 4-row arrays:
    #: the balanced 2-way boundary at 8 sees 2 protected / 6 unprotected
    #: below (neither a tile multiple), but the boundary at 12 sees 4 / 8.
    INTERLEAVED = [0, 1, 8, 9]

    def _mesh(self):
        from repro.arch.config import HardwareConfig

        return DeviceMesh(hardware=HardwareConfig(array_rows=4))

    def _interleaved_plans(self, rng):
        plans = make_plans(rng, num_blocks=1)
        for plan in plans.values():
            plan.protected_ranks[:] = False
            plan.protected_ranks[self.INTERLEAVED] = True
        return plans

    def test_partition_rank_compacted_lands_on_aligned_boundaries(self):
        protected = np.zeros(16, dtype=bool)
        protected[self.INTERLEAVED] = True
        assert not compacted_tile_aligned(protected, partition_rank(16, 2, tile=4), 4)
        slices = partition_rank_compacted(protected, 2, tile=4)
        assert slices == [(0, 12), (12, 16)]
        assert compacted_tile_aligned(protected, slices, 4)

    def test_partition_rank_compacted_returns_none_when_impossible(self):
        # A protected total that is not a tile multiple poisons every
        # boundary past the last protected rank.
        protected = np.zeros(16, dtype=bool)
        protected[:6] = True
        assert partition_rank_compacted(protected, 2, tile=64) is None

    def test_partition_rank_compacted_single_part(self):
        protected = np.zeros(5, dtype=bool)
        assert partition_rank_compacted(protected, 1, tile=64) == [(0, 5)]

    def test_partition_rank_compacted_validation(self):
        protected = np.zeros(8, dtype=bool)
        with pytest.raises(ValueError):
            partition_rank_compacted(protected, 0, tile=4)
        with pytest.raises(ValueError):
            partition_rank_compacted(protected, 2, tile=0)

    def test_build_rescues_subtile_layers(self, rng):
        plans = self._interleaved_plans(rng)
        # Sanity: the plain balanced partition is sub-tile for every layer.
        for plan in plans.values():
            assert not compacted_tile_aligned(
                plan.protected_ranks, partition_rank(plan.rank, 2, tile=4), 4
            )
        built = ShardPlan.build(plans, self._mesh(), tensor_parallel=2)
        assert built.fully_tile_aligned
        assert built.describe()["subtile_fallback_layers"] == 0
        for assignment in built.layers.values():
            assert assignment.tile_aligned
            assert assignment.rank_slices == [(0, 12), (12, 16)]

    def test_build_keeps_already_aligned_slices_byte_identical(self, rng):
        # Prefix masks of 4 protected ranks are aligned at the balanced
        # boundary already — the retry must not touch their slices.
        plans = make_plans(rng, num_blocks=1)
        built = ShardPlan.build(plans, self._mesh(), tensor_parallel=2)
        for name, assignment in built.layers.items():
            assert assignment.rank_slices == partition_rank(
                plans[name].rank, 2, tile=4
            )
            assert assignment.tile_aligned

    def test_build_keeps_plain_slices_when_unrescuable(self, rng):
        # Rank-16 layers on 64-row arrays have no interior aligned
        # boundary at all: the fallback keeps partition_rank's slices.
        plans = make_plans(rng, num_blocks=1)
        built = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=2)
        for name, assignment in built.layers.items():
            assert not assignment.tile_aligned
            assert assignment.rank_slices == partition_rank(
                plans[name].rank, 2, tile=64
            )


class TestDeploySharded:
    def test_deploys_known_layers_and_skips_unknown(self, rng):
        from repro.pim.hybrid import HybridLinear
        from repro.rram.noise import NoiseSpec

        plans = make_plans(rng)
        plan = ShardPlan.build(plans, DeviceMesh(), tensor_parallel=2)
        name = "blocks.0.attn.q"
        known = HybridLinear(plans[name], noise=NoiseSpec.noiseless(), mode="crossbar")
        stray = HybridLinear(plans[name], noise=NoiseSpec.noiseless(), mode="crossbar")
        deploy_sharded({name: known, "blocks.9.x": stray}, plan)
        assert known.is_sharded and known.num_shards == 2
        assert not stray.is_sharded
