"""PipelinedBlockExecutor: bitwise equivalence with the sequential decode path.

The stage-pipelined executor overlaps stage *i* of micro-batch *t* with
stage *i-1* of micro-batch *t+1*; the contract is that for noiseless
deployments its outputs are **bitwise** equal to the sequential
``model.forward(feeds, cache=view).data[:, -1]`` — across batch sizes,
ragged cache lengths, stage counts and micro-batch widths.  The two
subtle hazards it must neutralize are pinned here explicitly: 1-row
micro-batches dispatch to BLAS gemv (different accumulation than gemm),
and narrower per-micro-batch attention key widths change softmax
reduction lengths — both would silently break the continuous scheduler's
``generate``-equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import DeviceMesh, PipelinedBlockExecutor, ShardPlan
from repro.nn import DecoderLM, TransformerConfig
from repro.nn.kv_cache import KVCache
from repro.serve import ServingEngine

from tests.dist.test_plan import make_plans

VOCAB = 48
MAX_SEQ = 32


def _model(num_layers: int = 4, seed: int = 0) -> DecoderLM:
    return DecoderLM(
        TransformerConfig(
            vocab_size=VOCAB,
            d_model=32,
            num_heads=4,
            num_layers=num_layers,
            d_ff=64,
            max_seq_len=MAX_SEQ,
            seed=seed,
        )
    )


def _filled_cache(model: DecoderLM, lengths: list[int], rng) -> KVCache:
    """A live cache with the given per-row prompt lengths prefilled."""
    cache = KVCache(
        num_layers=model.config.num_layers,
        batch=len(lengths),
        num_heads=model.config.num_heads,
        head_dim=model.config.d_model // model.config.num_heads,
        capacity=MAX_SEQ,
    )
    width = max(lengths)
    prompts = rng.integers(0, VOCAB, size=(len(lengths), width))
    model.forward(prompts, cache=cache)
    cache.set_lengths(np.array(lengths))
    return cache


def _decode_once(model, cache, feeds):
    view = cache.rows_view(0, cache.batch)
    return model.forward(feeds, cache=view).data[:, -1]


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    @pytest.mark.parametrize("ragged", [False, True])
    def test_matches_sequential_forward(self, rng, n, ragged):
        model = _model()
        if ragged:
            lengths = [int(x) for x in rng.integers(2, 10, size=n)]
        else:
            lengths = [6] * n
        feeds = rng.integers(0, VOCAB, size=(n, 1))

        sequential_cache = _filled_cache(_model(), lengths, np.random.default_rng(7))
        expected = _decode_once(_model(), sequential_cache, feeds)

        cache = _filled_cache(model, lengths, np.random.default_rng(7))
        executor = PipelinedBlockExecutor(model, num_stages=2)
        try:
            got = executor.forward(feeds, cache.rows_view(0, n))
        finally:
            executor.close()
        np.testing.assert_array_equal(got, expected)
        # The pipelined step advanced every row exactly once, like the
        # sequential forward does.
        np.testing.assert_array_equal(
            cache.lengths[:n], sequential_cache.lengths[:n]
        )

    @pytest.mark.parametrize("num_stages", [1, 2, 4])
    @pytest.mark.parametrize("micro_batch_rows", [2, 3, 4])
    def test_stage_and_micro_batch_grid(self, rng, num_stages, micro_batch_rows):
        n = 7  # odd: exercises the folded 1-row remainder
        lengths = [int(x) for x in rng.integers(2, 10, size=n)]
        feeds = rng.integers(0, VOCAB, size=(n, 1))
        expected = _decode_once(
            _model(), _filled_cache(_model(), lengths, np.random.default_rng(3)), feeds
        )
        model = _model()
        cache = _filled_cache(model, lengths, np.random.default_rng(3))
        executor = PipelinedBlockExecutor(
            model, num_stages=num_stages, micro_batch_rows=micro_batch_rows
        )
        try:
            got = executor.forward(feeds, cache.rows_view(0, n))
        finally:
            executor.close()
        np.testing.assert_array_equal(got, expected)

    def test_multi_step_decode_stays_bitwise(self, rng):
        """Several consecutive pipelined steps against sequential decode."""
        n, steps = 4, 5
        lengths = [int(x) for x in rng.integers(2, 8, size=n)]
        feeds = rng.integers(0, VOCAB, size=(n, 1))

        seq_model = _model()
        seq_cache = _filled_cache(seq_model, lengths, np.random.default_rng(11))
        pipe_model = _model()
        pipe_cache = _filled_cache(pipe_model, lengths, np.random.default_rng(11))
        executor = PipelinedBlockExecutor(pipe_model, num_stages=2)
        try:
            current_seq, current_pipe = feeds, feeds
            for _ in range(steps):
                expected = _decode_once(seq_model, seq_cache, current_seq)
                got = executor.forward(current_pipe, pipe_cache.rows_view(0, n))
                np.testing.assert_array_equal(got, expected)
                current_seq = expected.argmax(axis=-1)[:, None]
                current_pipe = got.argmax(axis=-1)[:, None]
        finally:
            executor.close()
        assert executor.steps == steps


class TestStageBounds:
    def test_even_split_covers_all_layers(self):
        model = _model(num_layers=5)
        executor = PipelinedBlockExecutor(model, num_stages=2)
        try:
            assert executor.num_stages == 2
            assert executor.stage_bounds[0][0] == 0
            assert executor.stage_bounds[-1][1] == 5
            covered = [
                i for a, b in executor.stage_bounds for i in range(a, b)
            ]
            assert covered == list(range(5))
        finally:
            executor.close()

    def test_stages_clamped_to_num_layers(self):
        executor = PipelinedBlockExecutor(_model(num_layers=2), num_stages=8)
        try:
            assert executor.num_stages == 2
        finally:
            executor.close()

    def test_bounds_from_shard_plan_chip_assignment(self, rng):
        plans = make_plans(rng, num_blocks=4)
        plan = ShardPlan.build(plans, DeviceMesh(num_chips=2))
        assert plan.chips_used == 2
        executor = PipelinedBlockExecutor(_model(num_layers=4), shard_plan=plan)
        try:
            # One stage per chip: the plan's contiguous block runs.
            assert executor.num_stages == 2
            assert executor.stage_bounds == [(0, 2), (2, 4)]
        finally:
            executor.close()

    def test_counters_track_micro_batches(self, rng):
        model = _model()
        lengths = [4] * 6
        cache = _filled_cache(model, lengths, rng)
        executor = PipelinedBlockExecutor(model, num_stages=2, micro_batch_rows=2)
        try:
            executor.forward(np.zeros((6, 1), dtype=np.int64), cache.rows_view(0, 6))
        finally:
            executor.close()
        assert executor.steps == 1
        assert executor.micro_batches == 3

    def test_validation(self):
        model = _model(num_layers=2)
        with pytest.raises(ValueError, match="micro_batch_rows"):
            PipelinedBlockExecutor(model, num_stages=2, micro_batch_rows=1)
        with pytest.raises(ValueError, match="num_stages"):
            PipelinedBlockExecutor(model, num_stages=0)
        with pytest.raises(ValueError, match="shard_plan"):
            PipelinedBlockExecutor(model)


class TestEngineIntegration:
    def test_engine_pipeline_matches_sequential_engine(self, rng):
        prompts = [rng.integers(0, VOCAB, size=int(n)) for n in rng.integers(2, 8, size=6)]
        sequential = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0)
        seq_ids = [sequential.submit(p, 5) for p in prompts]
        seq = {r.request_id: r for r in sequential.run_until_idle()}

        pipelined = ServingEngine(_model(), max_batch_size=4, max_wait_s=0.0, pipeline=2)
        assert pipelined.executor is not None
        pipe_ids = [pipelined.submit(p, 5) for p in prompts]
        pipe = {r.request_id: r for r in pipelined.run_until_idle()}
        pipelined.executor.close()

        for sid, pid in zip(seq_ids, pipe_ids):
            np.testing.assert_array_equal(pipe[pid].tokens, seq[sid].tokens)
        assert pipelined.executor.steps > 0

    def test_pipeline_requires_continuous_scheduler(self):
        with pytest.raises(ValueError, match="continuous"):
            ServingEngine(_model(), scheduler="static", pipeline=2)
