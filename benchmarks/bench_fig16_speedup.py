"""Fig. 16: throughput speedup vs ASADI-dagger and SPRINT."""

from __future__ import annotations

from repro.exp import ExperimentSpec, Series

SEQ_LENS = (128, 512, 1024, 2048, 4096, 8192)
DECODE_SEQ_LENS = (512, 1024, 2048)
RATES = (0.05, 0.1, 0.3, 0.4, 0.5)


def _tables(value: dict) -> dict:
    return {
        baseline: {
            n: dict(zip(value["rates"], row))
            for n, row in zip(value["seq_lens"], rows)
        }
        for baseline, rows in value["tables"].items()
    }


def test_fig16_speedup(benchmark, print_header, fresh_runner):
    prefill = ExperimentSpec(
        "fig16", params={"model": "bert-large", "mode": "prefill",
                         "seq_lens": SEQ_LENS, "rates": RATES},
    )
    decode = ExperimentSpec(
        "fig16", params={"model": "gpt2", "mode": "decode",
                         "seq_lens": DECODE_SEQ_LENS, "rates": RATES},
    )

    series: Series = benchmark(lambda: fresh_runner.sweep([prefill, decode]))
    glue = _tables(series[0].value)
    wikitext = _tables(series[1].value)

    print_header("Fig. 16(a) — GLUE-class (BERT-Large prefill) speedup")
    for name, per_n in glue.items():
        print(f"\n[vs {name}]")
        print(f"{'N':>6} " + " ".join(f"{int(r*100):>6}%" for r in RATES))
        for n, rates in per_n.items():
            print(f"{n:>6} " + " ".join(f"{rates[r]:>6.2f}" for r in RATES))

    print_header("Fig. 16(b) — WikiText-2 (GPT-2 decode) speedup")
    for name, per_n in wikitext.items():
        print(f"\n[vs {name}]")
        print(f"{'N':>6} " + " ".join(f"{int(r*100):>6}%" for r in RATES))
        for n, rates in per_n.items():
            print(f"{n:>6} " + " ".join(f"{rates[r]:>6.2f}" for r in RATES))

    print("\npaper anchors: 1.1-1.86x vs ASADI-dagger; ~10.6x (GLUE) and ~44-46x")
    print("               (WikiText-2 generation) vs SPRINT at 20% SLC.")

    for n, rates in glue["asadi-dagger"].items():
        # At very long N the digital attention bounds both designs and the
        # ratio saturates at ASADI's FP32 factor, flattening across rates.
        assert 1.0 < rates[0.5] <= rates[0.05] <= 2.0, n
    assert wikitext["sprint"][1024][0.1] > glue["sprint"][1024][0.1]
