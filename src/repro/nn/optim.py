"""Optimizers and learning-rate schedules for fine-tuning.

The paper fine-tunes every model with AdamW (Table 1); SGD is provided as a
simple baseline and for unit tests.  Optimizers operate on explicit parameter
lists so the SVD fine-tuning stage can optimize factored layers (U, sigma,
V^T) directly.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Optimizer", "SGD", "AdamW", "LinearWarmupSchedule", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging / tests).
    """
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: Sequence[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                update = v
            else:
                update = p.grad
            p.data = p.data - self.lr * update


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Matches the optimizer named in the paper's Table 1 for all fine-tuning.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 2e-5,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update


class LinearWarmupSchedule:
    """Linear warmup followed by linear decay to zero, a common BERT recipe."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        if warmup_steps < 0 or total_steps <= 0 or warmup_steps > total_steps:
            raise ValueError("require 0 <= warmup_steps <= total_steps and total_steps > 0")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self._step_count = 0

    def step(self) -> float:
        """Advance one step and return the learning rate now in effect."""
        self._step_count += 1
        t = self._step_count
        if t <= self.warmup_steps and self.warmup_steps > 0:
            factor = t / self.warmup_steps
        else:
            remaining = max(self.total_steps - t, 0)
            denom = max(self.total_steps - self.warmup_steps, 1)
            factor = remaining / denom
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
