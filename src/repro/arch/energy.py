"""HyFlexPIM energy model (Figs. 14-15).

Per-operation energies are *derived* from Table 2's component powers — the
table reports steady-state power with every instance active at the stated
rate, so energy-per-event = power / event-rate:

- one analog array "wave" lasts one 100 ns conversion window, during which
  the array performs a 64x128 analog read and its shared SAR ADC converts
  all 128 bitlines (1.28 GSps);
- per array-wave energies therefore follow from per-module power divided by
  512 arrays, times 100 ns — reproducing Table 2's power shares exactly
  (ADC ≈ 55 %, WL drivers ≈ 32 %, ...);
- a 7-b (MLC) conversion costs 2x a 6-b one, but MLC halves conversions, so
  ADC energy is rate-independent while every other analog component halves —
  the mechanism behind the paper's MLC efficiency claim (Section 3.2);
- digital-PIM energy per INT8 MAC follows from module power over the
  273 ops/cycle throughput balance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import DEFAULT_HARDWARE, HardwareConfig
from repro.arch.workload import stage_op_counts
from repro.models.configs import ModelSpec
from repro.svd.decompose import hard_threshold_rank

__all__ = ["AnalogWaveEnergy", "EnergyBreakdown", "HyFlexPimEnergyModel"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class AnalogWaveEnergy:
    """Per-array, per-wave (100 ns) energies in pJ, derived from Table 2."""

    array_pj: float
    wl_drv_pj: float
    adc_6b_pj: float
    s_and_a_pj: float
    s_and_h_pj: float
    registers_pj: float

    @property
    def adc_7b_pj(self) -> float:
        return 2.0 * self.adc_6b_pj  # one extra bit doubles conversion energy

    def per_wave_pj(self, cell_bits: int) -> float:
        """Total energy of one array-wave for an SLC (1-b) or MLC (2-b) array."""
        adc = self.adc_6b_pj if cell_bits == 1 else self.adc_7b_pj
        return (
            self.array_pj
            + self.wl_drv_pj
            + adc
            + self.s_and_a_pj
            + self.s_and_h_pj
            + self.registers_pj
        )


@dataclass
class EnergyBreakdown:
    """Energy per category in pJ (the Fig. 15(b,d) stacked-bar categories)."""

    categories: dict[str, float] = field(default_factory=dict)

    def add(self, category: str, pj: float) -> None:
        self.categories[category] = self.categories.get(category, 0.0) + pj

    def merge(self, other: "EnergyBreakdown") -> None:
        for category, pj in other.categories.items():
            self.add(category, pj)

    def total_pj(self) -> float:
        return float(sum(self.categories.values()))

    def total_uj(self) -> float:
        return self.total_pj() * 1e-6

    def shares(self) -> dict[str, float]:
        total = self.total_pj()
        if total == 0:
            return {k: 0.0 for k in self.categories}
        return {k: v / total for k, v in self.categories.items()}


class HyFlexPimEnergyModel:
    """Analytic energy of HyFlexPIM inference at paper scale."""

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        write_amortization_inferences: float = 10_000.0,
    ) -> None:
        self.hw = hardware or DEFAULT_HARDWARE
        self.write_amortization = write_amortization_inferences
        analog = self.hw.analog
        n_arrays = self.hw.arrays_per_analog_module
        window = self.hw.conversion_window_ns  # ns

        def per_array_wave(name: str) -> float:
            # mW / arrays * ns = pJ
            return analog.component(name).power_mw / n_arrays * window

        self.wave = AnalogWaveEnergy(
            array_pj=per_array_wave("rram_array"),
            wl_drv_pj=per_array_wave("wl_drv"),
            adc_6b_pj=per_array_wave("adc"),
            s_and_a_pj=per_array_wave("s_and_a"),
            s_and_h_pj=per_array_wave("s_and_h"),
            registers_pj=per_array_wave("ir") + per_array_wave("or"),
        )

        # Digital PIM: per-MAC energy is a device-level constant (see
        # HardwareConfig.digital_pim_mac_pj); dividing Table 2's peak module
        # power by the NOR-balanced rate would overcount ~5x because only a
        # fraction of columns is active at that rate.
        digital = self.hw.digital
        non_sfu_mw = digital.module_power_mw() - digital.component("sfu").power_mw
        self.digital_mac_pj = self.hw.digital_pim_mac_pj
        # Component shares inside the digital MAC energy (for the breakdown).
        self._digital_shares = {
            "rram_access": digital.component("rram_array").power_mw / non_sfu_mw,
            "wl_drv_digital": digital.component("wl_drv").power_mw / non_sfu_mw,
            "s_and_a": (
                digital.component("s_and_a").power_mw
                + digital.component("s_and_h").power_mw
            )
            / non_sfu_mw,
            "registers": (
                digital.component("ir").power_mw + digital.component("or").power_mw
            )
            / non_sfu_mw,
        }
        # SFU energy per element-operation: power over 256 inputs/cycle.
        self.sfu_op_pj = (
            digital.component("sfu").power_mw
            * 1e9
            / (256 * self.hw.clock_hz)
        )

    # ------------------------------------------------------------------
    # Analog linear layers
    # ------------------------------------------------------------------
    def _arrays_for(self, out_f: int, in_f: int, cell_bits: int) -> float:
        """Fractional array occupancy of one matrix.

        The energy model uses *continuous* occupancy: wordlines and bitlines
        outside a fragment are gated off, so a 19-row fragment in a 64-row
        array only pays for 19 rows.  Capacity/placement models
        (:mod:`repro.arch.latency`, :mod:`repro.pim`) keep integer arrays.
        """
        slices = _ceil_div(self.hw.weight_bits, cell_bits)
        return (in_f / self.hw.array_rows) * (out_f * slices / self.hw.array_cols)

    def gemv_energy(
        self, out_f: int, in_f: int, cell_bits: int, tokens: float
    ) -> EnergyBreakdown:
        """Energy of ``tokens`` GEMVs against one (out_f x in_f) matrix."""
        arrays = self._arrays_for(out_f, in_f, cell_bits)
        waves = self.hw.input_bits * arrays * tokens
        adc = self.wave.adc_6b_pj if cell_bits == 1 else self.wave.adc_7b_pj
        breakdown = EnergyBreakdown()
        breakdown.add("adc", waves * adc)
        breakdown.add("rram_analog", waves * self.wave.array_pj)
        breakdown.add("wl_drv_analog", waves * self.wave.wl_drv_pj)
        breakdown.add("sh_sa", waves * (self.wave.s_and_a_pj + self.wave.s_and_h_pj))
        breakdown.add("sram_access", waves * self.wave.registers_pj)
        return breakdown

    def factored_layer_energy(
        self,
        out_f: int,
        in_f: int,
        slc_rate: float,
        tokens: float,
        rank: int | None = None,
    ) -> EnergyBreakdown:
        """Hybrid energy of one SVD-factored layer (A: k x in, B: out x k).

        ``slc_rate`` of the ranks run on SLC; the rest on 2-b MLC.
        """
        if not 0.0 <= slc_rate <= 1.0:
            raise ValueError(f"slc_rate must be in [0, 1], got {slc_rate}")
        k = rank if rank is not None else hard_threshold_rank(out_f, in_f)
        k_slc = int(round(k * slc_rate))
        k_mlc = k - k_slc
        breakdown = EnergyBreakdown()
        if k_slc:
            breakdown.merge(self.gemv_energy(k_slc, in_f, 1, tokens))  # A rows
            breakdown.merge(self.gemv_energy(out_f, k_slc, 1, tokens))  # B cols
        if k_mlc:
            breakdown.merge(self.gemv_energy(k_mlc, in_f, 2, tokens))
            breakdown.merge(self.gemv_energy(out_f, k_mlc, 2, tokens))
        # One-time analog programming, amortized per inference.
        weight_bits = (k * in_f + out_f * k) * self.hw.weight_bits
        write_pj = (
            weight_bits
            * self.hw.slc_write_pj_per_bit
            * (slc_rate + (1 - slc_rate) * self.hw.mlc_write_pulses / 2.0)
        )
        breakdown.add("rram_write_analog", write_pj / self.write_amortization)
        return breakdown

    def linear_layers_energy(
        self, spec: ModelSpec, seq_len: int, slc_rate: float, mode: str = "prefill"
    ) -> EnergyBreakdown:
        """All static linear layers of the model (Fig. 14's quantity)."""
        d, ff = spec.d_model, spec.d_ff
        breakdown = EnergyBreakdown()
        per_layer_shapes = [(d, d)] * 4 + [(ff, d), (d, ff)]
        for out_f, in_f in per_layer_shapes:
            layer = self.factored_layer_energy(out_f, in_f, slc_rate, tokens=float(seq_len))
            for category, pj in layer.categories.items():
                breakdown.add(category, pj * spec.num_layers)
        return breakdown

    # ------------------------------------------------------------------
    # Digital attention + SFU
    # ------------------------------------------------------------------
    def attention_energy(
        self,
        spec: ModelSpec,
        seq_len: int,
        mode: str = "prefill",
        attention: str = "digital",
    ) -> EnergyBreakdown:
        """Q·Kᵀ and S·V on digital PIM, plus operand writes and softmax SFU.

        ``attention="analog"`` delegates to :meth:`analog_attention_energy`
        — the dynamic products as MLC crossbar GEMVs with real-time KV
        operand writes (the serving path's ``deploy(attention="analog")``).
        """
        if attention not in ("digital", "analog"):
            raise ValueError(
                f'attention must be "digital" or "analog", got {attention!r}'
            )
        if attention == "analog":
            return self.analog_attention_energy(spec, seq_len, mode)
        ops = stage_op_counts(spec, seq_len, mode)
        macs = ops.attention_total() / 2.0  # counts are 2x MACs
        breakdown = EnergyBreakdown()
        mac_pj = macs * self.digital_mac_pj
        breakdown.add("attention_dot", mac_pj * self._digital_shares["rram_access"])
        breakdown.add("wl_drv_digital", mac_pj * self._digital_shares["wl_drv_digital"])
        breakdown.add("sh_sa", mac_pj * self._digital_shares["s_and_a"])
        breakdown.add("sram_access", mac_pj * self._digital_shares["registers"])
        # Real-time operand writes: Q, K, V and the attention output (INT8).
        # Score rows stream through the S&A/softmax pipeline without being
        # persisted, so they incur no array writes.
        operand_bytes = 4.0 * seq_len * spec.d_model * spec.num_layers
        write_pj = operand_bytes * 8 * self.hw.slc_write_pj_per_bit
        breakdown.add("rram_write_digital", write_pj)
        # Softmax on the SFU.
        breakdown.add("sfu", ops.nonlinear_total() * self.sfu_op_pj)
        # LayerNorm + activation, ~2 passes over N x d per layer.
        norm_elems = 2.0 * seq_len * spec.d_model * spec.num_layers * 7
        breakdown.add("sfu", norm_elems * self.sfu_op_pj)
        return breakdown

    def analog_attention_energy(
        self, spec: ModelSpec, seq_len: int, mode: str = "prefill"
    ) -> EnergyBreakdown:
        """Q·Kᵀ and S·V as MLC crossbar GEMVs over dynamic KV operands.

        Models the serving path's ``deploy(attention="analog")``: per head,
        the query streams over a bitline-grown key operand (out = cached
        context, in = d_head) and the probability row over a wordline-grown
        value operand (out = d_head, in = context), both on 2-b MLC — so
        the dynamic products inherit the analog stack's ADC/driver/S&H
        costs instead of digital-PIM NOR MACs.  The GEMV geometry mirrors
        :func:`~repro.arch.workload.stage_op_counts` exactly (prefill:
        ``L`` queries against an ``L``-wide context; decode: ``L`` emitted
        tokens against the ``(L+1)/2`` average cached prefix), so the
        analog/digital ratio isolates the per-operation cost shift.  K/V
        operand writes are *real-time* (one MLC program per token per
        layer, both operands) and are charged in full under
        ``rram_write_analog`` — unlike static weights they are not
        amortized over an inference corpus.  Softmax and LayerNorm stay on
        the SFU exactly as in the digital path.
        """
        ops = stage_op_counts(spec, seq_len, mode)  # validates mode too
        d_head = spec.d_model // spec.num_heads
        queries = float(seq_len)
        tokens_written = float(seq_len)
        context = (seq_len + 1) / 2.0 if mode == "decode" else float(seq_len)
        gemvs = queries * spec.num_heads
        per_layer = EnergyBreakdown()
        per_layer.merge(self.gemv_energy(context, d_head, 2, gemvs))  # Q·Kᵀ
        per_layer.merge(self.gemv_energy(d_head, context, 2, gemvs))  # S·V
        breakdown = EnergyBreakdown()
        for category, pj in per_layer.categories.items():
            breakdown.add(category, pj * spec.num_layers)
        # Real-time K/V operand programming: 2 operands x d_model codes per
        # token per layer at MLC write cost, charged per token (no
        # write-amortization — every served token pays its own writes).
        kv_bits = (
            tokens_written * 2.0 * spec.d_model * self.hw.weight_bits * spec.num_layers
        )
        write_pj = kv_bits * self.hw.slc_write_pj_per_bit * (
            self.hw.mlc_write_pulses / 2.0
        )
        breakdown.add("rram_write_analog", write_pj)
        breakdown.add("sfu", ops.nonlinear_total() * self.sfu_op_pj)
        norm_elems = 2.0 * seq_len * spec.d_model * spec.num_layers * 7
        breakdown.add("sfu", norm_elems * self.sfu_op_pj)
        return breakdown

    # ------------------------------------------------------------------
    def end_to_end_energy(
        self,
        spec: ModelSpec,
        seq_len: int,
        slc_rate: float,
        mode: str = "prefill",
        attention: str = "digital",
    ) -> EnergyBreakdown:
        """Full-inference energy with the Fig. 15 breakdown categories.

        ``attention`` selects where the dynamic attention products run:
        Fig. 15's digital PIM (default, bitwise-stable) or the analog
        dynamic-operand path (see :meth:`analog_attention_energy`).
        """
        breakdown = self.linear_layers_energy(spec, seq_len, slc_rate, mode)
        breakdown.merge(self.attention_energy(spec, seq_len, mode, attention=attention))
        return breakdown
