"""Loss functions for classification, regression and language modelling."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = ["cross_entropy", "mse_loss", "lm_cross_entropy"]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def lm_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Token-level cross-entropy for language modelling.

    ``logits`` is (batch, seq, vocab); ``targets`` is (batch, seq) of next-token
    ids.  Returns mean negative log-likelihood, whose exponent is perplexity.
    """
    targets = np.asarray(targets)
    batch, seq, vocab = logits.shape
    flat = logits.reshape(batch * seq, vocab)
    return cross_entropy(flat, targets.reshape(-1))


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = predictions - as_tensor(np.asarray(targets, dtype=float))
    return (diff * diff).mean()
