"""Tests for the synthetic GLUE / LM / vision workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    CIFAR10_LIKE_CLASSES,
    CLS_TOKEN,
    GLUE_TASKS,
    SEP_TOKEN,
    make_glue_task,
    make_vision_dataset,
    ptb_like,
    wikitext2_like,
)
from repro.datasets.synthetic_vision import VisionSpec


class TestGlueTasks:
    @pytest.mark.parametrize("name", sorted(GLUE_TASKS))
    def test_shapes_and_token_ranges(self, name):
        data = make_glue_task(name, seed=0)
        spec = data.spec
        assert data.train.inputs.shape == (spec.train_size, spec.seq_len)
        assert data.test.inputs.shape == (spec.test_size, spec.seq_len)
        assert data.train.inputs.min() >= 0
        assert data.train.inputs.max() < spec.vocab_size
        assert (data.train.inputs[:, 0] == CLS_TOKEN).all()

    @pytest.mark.parametrize("name", ["mrpc", "qnli", "qqp", "rte", "stsb"])
    def test_pair_tasks_contain_separator(self, name):
        data = make_glue_task(name, seed=0)
        assert (data.train.inputs == SEP_TOKEN).any(axis=1).all()

    @pytest.mark.parametrize("name", ["cola", "mrpc", "qnli", "qqp", "rte", "sst2"])
    def test_classification_labels_balanced(self, name):
        data = make_glue_task(name, seed=0)
        rate = data.train.targets.mean()
        assert 0.3 < rate < 0.7, f"{name} labels degenerate: positive rate {rate}"

    def test_stsb_targets_span_range(self):
        data = make_glue_task("stsb", seed=0)
        assert data.train.targets.min() >= 0.0
        assert data.train.targets.max() <= 5.0
        assert data.train.targets.std() > 0.5

    def test_generation_is_deterministic(self):
        a = make_glue_task("mrpc", seed=7)
        b = make_glue_task("mrpc", seed=7)
        np.testing.assert_array_equal(a.train.inputs, b.train.inputs)
        np.testing.assert_array_equal(a.train.targets, b.train.targets)

    def test_different_seeds_differ(self):
        a = make_glue_task("mrpc", seed=1)
        b = make_glue_task("mrpc", seed=2)
        assert not np.array_equal(a.train.inputs, b.train.inputs)

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            make_glue_task("mnli")

    def test_tasks_are_learnable_by_simple_probe(self):
        """A bag-of-tokens logistic signal must exist in sst2 (sanity check
        that the task is not pure noise)."""
        data = make_glue_task("sst2", seed=0)
        vocab = data.spec.vocab_size
        counts = np.zeros((len(data.train), vocab))
        for i, row in enumerate(data.train.inputs):
            counts[i] = np.bincount(row, minlength=vocab)
        # Correlation between class and token histogram must be substantial.
        label_centered = data.train.targets - data.train.targets.mean()
        corr = np.abs(counts.T @ label_centered)
        assert corr.max() > len(data.train) * 0.1


class TestLMCorpora:
    @pytest.mark.parametrize("factory", [wikitext2_like, ptb_like])
    def test_shapes_and_alignment(self, factory):
        corpus = factory(seed=0)
        spec = corpus.spec
        assert corpus.train.inputs.shape == (spec.train_sequences, spec.seq_len)
        # Targets are inputs shifted by one within the same underlying stream.
        np.testing.assert_array_equal(
            corpus.train.inputs[:, 1:], corpus.train.targets[:, :-1]
        )

    def test_transition_matrix_is_stochastic(self):
        corpus = ptb_like(seed=0)
        np.testing.assert_allclose(corpus.transition.sum(axis=1), 1.0, atol=1e-9)
        assert (corpus.transition >= 0).all()

    def test_entropy_rate_below_uniform(self):
        corpus = wikitext2_like(seed=0)
        assert corpus.entropy_rate < np.log(corpus.spec.vocab_size) * 0.8

    def test_corpus_statistics_match_chain(self):
        """Empirical bigram frequencies should correlate with the chain."""
        corpus = ptb_like(seed=0)
        vocab = corpus.spec.vocab_size
        counts = np.zeros((vocab, vocab))
        inputs, targets = corpus.train.inputs, corpus.train.targets
        for row_in, row_out in zip(inputs, targets):
            np.add.at(counts, (row_in, row_out), 1.0)
        empirical = counts / np.maximum(counts.sum(axis=1, keepdims=True), 1)
        mask = counts.sum(axis=1) > 50
        corr = np.corrcoef(
            empirical[mask].reshape(-1), corpus.transition[mask].reshape(-1)
        )[0, 1]
        assert corr > 0.9

    def test_deterministic(self):
        a = wikitext2_like(seed=3)
        b = wikitext2_like(seed=3)
        np.testing.assert_array_equal(a.train.inputs, b.train.inputs)


class TestVisionDataset:
    def test_shapes(self):
        spec = VisionSpec(image_size=16, train_size=40, test_size=10)
        data = make_vision_dataset(spec, seed=0)
        assert data.train.inputs.shape == (40, 3, 16, 16)
        assert data.test.inputs.shape == (10, 3, 16, 16)
        assert data.train.targets.min() >= 0
        assert data.train.targets.max() < 10

    def test_ten_classes(self):
        assert len(CIFAR10_LIKE_CLASSES) == 10

    def test_normalized_statistics(self):
        data = make_vision_dataset(VisionSpec(image_size=16, train_size=60, test_size=20))
        all_pixels = np.concatenate([data.train.inputs.ravel(), data.test.inputs.ravel()])
        assert abs(all_pixels.mean()) < 0.05
        assert abs(all_pixels.std() - 1.0) < 0.05

    def test_classes_are_visually_distinct(self):
        """Mean images of different classes must differ far above noise."""
        spec = VisionSpec(image_size=16, train_size=300, test_size=20, noise_std=0.1)
        data = make_vision_dataset(spec, seed=0)
        means = []
        for c in range(3):
            mask = data.train.targets == c
            if mask.sum():
                means.append(data.train.inputs[mask].mean(axis=0))
        dist = np.abs(means[0] - means[1]).mean()
        assert dist > 0.1

    def test_deterministic(self):
        spec = VisionSpec(image_size=8, train_size=10, test_size=5)
        a = make_vision_dataset(spec, seed=1)
        b = make_vision_dataset(spec, seed=1)
        np.testing.assert_array_equal(a.train.inputs, b.train.inputs)
