"""INT8 quantization used for all linear layers and attention operands.

The paper (Section 5.1) runs every linear layer and the Q/K/V attention
operands in INT8, with FP16 reserved for the SFU's non-linear functions.
This module provides symmetric linear quantization plus the offset encoding
needed to place signed weights onto non-negative RRAM conductances:

- **Weights** are quantized to signed INT8, then *offset-encoded*
  (``q + 128`` in [0, 255]) before being bit-sliced across RRAM cells, since
  a memristor conductance cannot be negative.  The digital shift-and-add
  stage removes the offset by subtracting ``128 * sum(inputs)``.
- **Activations** are quantized to signed INT8 and streamed bit-serially;
  the two's-complement MSB cycle receives a negative weight in the digital
  shift-and-add, which is free in digital arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantParams",
    "quantize",
    "dequantize",
    "fake_quantize",
    "offset_encode",
    "offset_decode",
    "int_to_bits",
    "int_to_bit_planes",
    "bits_to_int",
]


@dataclass(frozen=True)
class QuantParams:
    """Scale and integer range of a symmetric linear quantizer."""

    scale: float | np.ndarray
    num_bits: int = 8

    @property
    def qmin(self) -> int:
        return -(2 ** (self.num_bits - 1))

    @property
    def qmax(self) -> int:
        return 2 ** (self.num_bits - 1) - 1

    @property
    def offset(self) -> int:
        """Bias added to signed codes to make them non-negative cell values."""
        return 2 ** (self.num_bits - 1)


def _compute_scale(
    x: np.ndarray, num_bits: int, per_channel_axis: int | None
) -> float | np.ndarray:
    qmax = 2 ** (num_bits - 1) - 1
    if per_channel_axis is None:
        max_abs = float(np.abs(x).max()) if x.size else 0.0
        return max(max_abs, 1e-12) / qmax
    axes = tuple(i for i in range(x.ndim) if i != per_channel_axis)
    max_abs = np.abs(x).max(axis=axes, keepdims=True)
    return np.maximum(max_abs, 1e-12) / qmax


def quantize(
    x: np.ndarray,
    num_bits: int = 8,
    per_channel_axis: int | None = None,
    params: QuantParams | None = None,
) -> tuple[np.ndarray, QuantParams]:
    """Symmetrically quantize ``x`` to signed integers.

    Returns the integer codes (dtype int32) and the :class:`QuantParams`
    needed to dequantize.  If ``params`` is given, its scale is reused
    (e.g. calibrated activations at deployment time).
    """
    if num_bits < 2 or num_bits > 16:
        raise ValueError(f"num_bits must be in [2, 16], got {num_bits}")
    x = np.asarray(x, dtype=float)
    if params is None:
        params = QuantParams(scale=_compute_scale(x, num_bits, per_channel_axis), num_bits=num_bits)
    elif params.num_bits != num_bits:
        raise ValueError(f"params.num_bits={params.num_bits} conflicts with num_bits={num_bits}")
    codes = np.round(x / params.scale)
    codes = np.clip(codes, params.qmin, params.qmax).astype(np.int32)
    return codes, params


def dequantize(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map integer codes back to real values."""
    return np.asarray(codes, dtype=float) * params.scale


def fake_quantize(
    x: np.ndarray, num_bits: int = 8, per_channel_axis: int | None = None
) -> np.ndarray:
    """Quantize-dequantize round trip (the INT8 'baseline' of Fig. 12)."""
    codes, params = quantize(x, num_bits=num_bits, per_channel_axis=per_channel_axis)
    return dequantize(codes, params)


def offset_encode(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Shift signed codes into [0, 2^bits - 1] for conductance mapping."""
    encoded = np.asarray(codes, dtype=np.int64) + params.offset
    if encoded.min(initial=0) < 0 or encoded.max(initial=0) > 2**params.num_bits - 1:
        raise ValueError("codes out of range for offset encoding")
    return encoded


def offset_decode(encoded: np.ndarray, params: QuantParams) -> np.ndarray:
    """Inverse of :func:`offset_encode`."""
    return np.asarray(encoded, dtype=np.int64) - params.offset


def int_to_bits(values: np.ndarray, num_bits: int) -> np.ndarray:
    """Decompose non-negative ints into bit planes, LSB first.

    Returns an array of shape ``values.shape + (num_bits,)`` with entries in
    {0, 1}.  Used for both bit-serial input streaming (rows) and bit-sliced
    weight storage (columns).
    """
    values = np.asarray(values, dtype=np.int64)
    if values.min(initial=0) < 0:
        raise ValueError("int_to_bits requires non-negative values")
    if values.max(initial=0) >= 2**num_bits:
        raise ValueError(f"value {values.max()} does not fit in {num_bits} bits")
    shifts = np.arange(num_bits)
    return (values[..., None] >> shifts) & 1


def int_to_bit_planes(values: np.ndarray, num_bits: int) -> np.ndarray:
    """Decompose non-negative ints into *plane-major* packed uint8 bit planes.

    Returns an array of shape ``(num_bits,) + values.shape`` with entries in
    {0, 1}, LSB plane first.  Plane ``k`` is C-contiguous, which is what the
    bit-serial crossbar kernels need to stream one input bit-plane per cycle,
    and uint8 storage is 8x smaller than the int64 trailing-axis layout of
    :func:`int_to_bits`.  ``np.moveaxis(planes, 0, -1)`` recovers the
    trailing-axis view bit-for-bit.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.min(initial=0) < 0:
        raise ValueError("int_to_bit_planes requires non-negative values")
    if values.max(initial=0) >= 2**num_bits:
        raise ValueError(f"value {values.max()} does not fit in {num_bits} bits")
    shifts = np.arange(num_bits).reshape((num_bits,) + (1,) * values.ndim)
    return ((values[None, ...] >> shifts) & 1).astype(np.uint8)


def bits_to_int(bits: np.ndarray) -> np.ndarray:
    """Recombine LSB-first bit planes into integers (inverse of int_to_bits)."""
    bits = np.asarray(bits, dtype=np.int64)
    weights = 1 << np.arange(bits.shape[-1])
    return (bits * weights).sum(axis=-1)
