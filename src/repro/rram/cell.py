"""RRAM cell models: SLC and multi-level cells (Fig. 3(b,c)).

A cell stores an integer *level* in ``[0, 2^bits - 1]`` as a programmable
conductance.  Physical constants follow Section 5.4: on-state resistance
``R_ON = 6 kΩ`` with an on/off ratio of 150, SET/RESET voltages of
1.62 V / 3.63 V.  Computation in :mod:`repro.rram.crossbar` operates on
normalized level values (conductance expressed in units of one level step),
with programming noise applied multiplicatively per the paper's Eq. (5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CellType", "SLC", "MLC2", "MLC3", "MLC4", "CELL_TYPES", "RramDeviceParams"]


@dataclass(frozen=True)
class RramDeviceParams:
    """Electrical constants of the RRAM device (Section 5.4)."""

    r_on_ohm: float = 6_000.0
    on_off_ratio: float = 150.0
    set_voltage: float = 1.62
    reset_voltage: float = 3.63
    endurance_cycles: float = 1e8  # typical RRAM endurance (Grossi et al.)

    @property
    def r_off_ohm(self) -> float:
        """High-resistance-state resistance (R_on x on/off ratio)."""
        return self.r_on_ohm * self.on_off_ratio

    @property
    def g_min_siemens(self) -> float:
        """Conductance of the fully-off cell (1 / R_off)."""
        return 1.0 / self.r_off_ohm

    @property
    def g_max_siemens(self) -> float:
        """Conductance of the fully-on cell (1 / R_on)."""
        return 1.0 / self.r_on_ohm


@dataclass(frozen=True)
class CellType:
    """A storage-cell configuration (bits per cell and write behaviour)."""

    name: str
    bits: int
    # MLC programming needs iterative verify-read/write pulses to hit the
    # target conductance (Section 3.2); SLC writes in a single pulse.
    write_pulses: int

    def __post_init__(self) -> None:
        if self.bits < 1 or self.bits > 4:
            raise ValueError(f"bits per cell must be in [1, 4], got {self.bits}")

    @property
    def levels(self) -> int:
        """Number of programmable conductance levels (2^bits)."""
        return 2**self.bits

    @property
    def max_level(self) -> int:
        """Highest programmable level index."""
        return self.levels - 1

    def conductance_levels(self, device: RramDeviceParams | None = None) -> np.ndarray:
        """Evenly spaced conductances (Siemens) for each storable level."""
        device = device or RramDeviceParams()
        return np.linspace(device.g_min_siemens, device.g_max_siemens, self.levels)

    def validate_levels(self, levels: np.ndarray) -> None:
        """Raise ``ValueError`` if any level is outside this cell's range."""
        levels = np.asarray(levels)
        if levels.size == 0:
            return
        if levels.min() < 0 or levels.max() > self.max_level:
            raise ValueError(
                f"levels out of range [0, {self.max_level}] for {self.name}: "
                f"min={levels.min()}, max={levels.max()}"
            )


SLC = CellType("SLC", bits=1, write_pulses=1)
MLC2 = CellType("MLC2", bits=2, write_pulses=4)
MLC3 = CellType("MLC3", bits=3, write_pulses=8)
MLC4 = CellType("MLC4", bits=4, write_pulses=16)

CELL_TYPES: dict[str, CellType] = {c.name: c for c in (SLC, MLC2, MLC3, MLC4)}
