"""Tests for the KV cache and the incremental (O(L)-per-token) decode path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    DecoderLM,
    KVCache,
    MultiHeadAttention,
    Tensor,
    TransformerConfig,
    causal_mask,
    set_default_dtype,
)


@pytest.fixture
def lm_config():
    return TransformerConfig(
        vocab_size=50,
        d_model=32,
        num_heads=4,
        num_layers=3,
        d_ff=64,
        max_seq_len=24,
        seed=7,
    )


class TestCausalMaskGeneralization:
    def test_square_mask_unchanged(self):
        np.testing.assert_array_equal(causal_mask(5), causal_mask(5, 5))

    def test_incremental_mask_alignment(self):
        # 2 queries at positions 3, 4 of a 5-key prefix.
        mask = causal_mask(2, 5)
        np.testing.assert_array_equal(
            mask,
            [[False, False, False, False, True], [False, False, False, False, False]],
        )

    def test_single_query_sees_whole_prefix(self):
        assert not causal_mask(1, 7).any()

    def test_rejects_kv_shorter_than_queries(self):
        with pytest.raises(ValueError):
            causal_mask(4, 3)


class TestKVCache:
    def test_append_and_views(self):
        cache = KVCache(num_layers=2, batch=2, num_heads=3, head_dim=4, capacity=8)
        k = np.ones((2, 3, 5, 4))
        k_view, v_view = cache.append(0, k, 2 * k)
        assert k_view.shape == (2, 3, 5, 4)
        # lengths advance only on commit, so the second layer writes at the
        # same offsets.
        assert cache.max_length == 0
        cache.append(1, k, 2 * k)
        cache.advance(5)
        assert cache.max_length == 5

    def test_overflow_raises(self):
        cache = KVCache(num_layers=1, batch=1, num_heads=1, head_dim=2, capacity=4)
        cache.append(0, np.zeros((1, 1, 3, 2)), np.zeros((1, 1, 3, 2)))
        cache.advance(3)
        with pytest.raises(ValueError):
            cache.append(0, np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 2, 2)))

    def test_ragged_multi_token_append_rejected(self):
        cache = KVCache(num_layers=1, batch=2, num_heads=1, head_dim=2, capacity=8)
        cache.append(0, np.zeros((2, 1, 4, 2)), np.zeros((2, 1, 4, 2)))
        cache.advance(4)
        cache.set_lengths(np.array([4, 2]))
        with pytest.raises(ValueError):
            cache.append(0, np.zeros((2, 1, 2, 2)), np.zeros((2, 1, 2, 2)))

    def test_ragged_scatter_writes_at_row_offsets(self):
        cache = KVCache(num_layers=1, batch=2, num_heads=1, head_dim=2, capacity=8)
        cache.set_lengths(np.array([3, 1]))
        k = np.arange(4.0).reshape(2, 1, 1, 2)
        cache.append(0, k, k)
        np.testing.assert_array_equal(cache.keys[0][0, 0, 3], [0.0, 1.0])
        np.testing.assert_array_equal(cache.keys[0][1, 0, 1], [2.0, 3.0])

    def test_key_padding_mask(self):
        cache = KVCache(num_layers=1, batch=2, num_heads=1, head_dim=2, capacity=8)
        cache.set_lengths(np.array([4, 2]))
        mask = cache.key_padding_mask(5)  # after a 1-token append
        np.testing.assert_array_equal(
            mask, [[False] * 5, [False, False, False, True, True]]
        )

    def test_aligned_rows_need_no_mask(self):
        cache = KVCache(num_layers=1, batch=2, num_heads=1, head_dim=2, capacity=8)
        cache.set_lengths(np.array([3, 3]))
        assert cache.key_padding_mask(4) is None

    def test_reset_reuses_buffers(self):
        cache = KVCache(num_layers=1, batch=1, num_heads=1, head_dim=2, capacity=4)
        buf = cache.keys[0]
        cache.append(0, np.ones((1, 1, 2, 2)), np.ones((1, 1, 2, 2)))
        cache.advance(2)
        cache.reset()
        assert cache.max_length == 0
        assert cache.keys[0] is buf

    def test_dtype_follows_default_policy(self):
        prev = set_default_dtype("float32")
        try:
            cache = KVCache(num_layers=1, batch=1, num_heads=1, head_dim=2, capacity=4)
            assert cache.dtype == np.dtype("float32")
        finally:
            set_default_dtype(prev)


class TestIncrementalAttention:
    def test_cached_equals_full_context(self, rng):
        mha = MultiHeadAttention(16, 4, causal=True, rng=rng)
        x = rng.normal(size=(2, 7, 16))
        full = mha(Tensor(x)).data
        cache = KVCache(num_layers=1, batch=2, num_heads=4, head_dim=4, capacity=7)
        outs = [mha(Tensor(x[:, :3]), cache=cache.layer(0)).data]
        cache.advance(3)
        for t in range(3, 7):
            outs.append(mha(Tensor(x[:, t : t + 1]), cache=cache.layer(0)).data)
            cache.advance(1)
        np.testing.assert_allclose(np.concatenate(outs, axis=1), full, atol=1e-12)


class TestIncrementalDecoder:
    def test_cached_logits_equal_full_context(self, lm_config, rng):
        """KV-cached incremental forward ≡ full-context forward (tentpole)."""
        model = DecoderLM(lm_config)
        ids = rng.integers(0, 50, size=(3, 12))
        full = model.forward(ids).data
        cache = model.new_cache(3)
        parts = [model.forward(ids[:, :5], cache=cache).data]
        for t in range(5, 12):
            parts.append(model.forward(ids[:, t : t + 1], cache=cache).data)
        np.testing.assert_allclose(np.concatenate(parts, axis=1), full, atol=1e-10)

    def test_cached_logits_equal_full_context_float32(self, lm_config, rng):
        """Equivalence holds at the float32 compute-dtype policy too."""
        prev = set_default_dtype("float32")
        try:
            model = DecoderLM(lm_config)
            ids = rng.integers(0, 50, size=(2, 10))
            full = model.forward(ids).data
            cache = model.new_cache(2)
            parts = [model.forward(ids[:, :4], cache=cache).data]
            for t in range(4, 10):
                parts.append(model.forward(ids[:, t : t + 1], cache=cache).data)
            inc = np.concatenate(parts, axis=1)
            assert inc.dtype == np.dtype("float32")
            np.testing.assert_allclose(inc, full, rtol=2e-5, atol=2e-5)
        finally:
            set_default_dtype(prev)

    def test_cache_capacity_guard(self, lm_config, rng):
        model = DecoderLM(lm_config)
        cache = model.new_cache(1, capacity=6)
        model.forward(rng.integers(0, 50, size=(1, 4)), cache=cache)
        with pytest.raises(ValueError):
            model.forward(rng.integers(0, 50, size=(1, 3)), cache=cache)


class TestGenerate:
    def test_cached_matches_naive_greedy(self, lm_config, rng):
        model = DecoderLM(lm_config)
        prompts = rng.integers(0, 50, size=(4, 8))
        cached = model.generate(prompts, 12, use_cache=True)
        naive = model.generate(prompts, 12, use_cache=False)
        np.testing.assert_array_equal(cached, naive)

    def test_batched_equals_per_prompt_loop(self, lm_config, rng):
        """Batched ragged generate ≡ running every prompt alone."""
        model = DecoderLM(lm_config)
        prompts = rng.integers(0, 50, size=(3, 9))
        lengths = np.array([9, 6, 3])
        batched = model.generate(prompts, 7, prompt_lengths=lengths)
        for i in range(3):
            solo = model.generate(prompts[i, : lengths[i]], 7)
            np.testing.assert_array_equal(
                solo[lengths[i] :], batched[i, lengths[i] : lengths[i] + 7]
            )

    def test_one_dimensional_prompt_back_compat(self, lm_config, rng):
        model = DecoderLM(lm_config)
        prompt = rng.integers(0, 50, size=6)
        out = model.generate(prompt, 5)
        assert out.shape == (11,)
        np.testing.assert_array_equal(out[:6], prompt)

    def test_naive_sliding_window_past_max_seq_len(self, lm_config, rng):
        model = DecoderLM(lm_config)
        out = model.generate(rng.integers(0, 50, size=4), 40, use_cache=False)
        assert out.shape == (44,)

    def test_cached_overflow_falls_back_to_sliding_window(self, lm_config, rng):
        """A request past max_seq_len degrades to the naive recompute (the
        historical behaviour) instead of raising."""
        model = DecoderLM(lm_config)
        prompt = rng.integers(0, 50, size=4)
        out = model.generate(prompt, 40, use_cache=True)
        np.testing.assert_array_equal(out, model.generate(prompt, 40, use_cache=False))

    def test_explicit_cache_past_capacity_still_raises(self, lm_config, rng):
        model = DecoderLM(lm_config)
        cache = model.new_cache(1)
        with pytest.raises(ValueError):
            model.generate(rng.integers(0, 50, size=4), 40, use_cache=True, cache=cache)

    def test_dropout_frozen_during_generation(self, rng):
        """Decoding must be deterministic and cached ≡ naive even for models
        built with dropout > 0 (generation runs in eval mode)."""
        config = TransformerConfig(
            vocab_size=50, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_seq_len=24, dropout=0.2, seed=4,
        )
        model = DecoderLM(config)
        assert model.training
        prompts = rng.integers(0, 50, size=(2, 6))
        a = model.generate(prompts, 8, use_cache=True)
        b = model.generate(prompts, 8, use_cache=True)
        c = model.generate(prompts, 8, use_cache=False)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)
        assert model.training  # restored afterwards

    def test_eos_stops_row_early_and_pads(self, lm_config, rng):
        model = DecoderLM(lm_config)
        prompts = rng.integers(0, 50, size=(2, 5))
        # Discover what greedy emits first, then declare it the EOS token.
        free = model.generate(prompts, 6)
        eos = int(free[0, 5])
        out = model.generate(prompts, 6, eos_id=eos, pad_id=0)
        assert out[0, 5] == eos
        np.testing.assert_array_equal(out[0, 6:], np.zeros(5, dtype=np.int64))

    def test_sampled_generation_respects_rng(self, lm_config, rng):
        model = DecoderLM(lm_config)
        prompt = rng.integers(0, 50, size=6)
        a = model.generate(prompt, 8, rng=np.random.default_rng(0))
        b = model.generate(prompt, 8, rng=np.random.default_rng(0))
        c = model.generate(prompt, 8, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_prompt_lengths_validation(self, lm_config, rng):
        model = DecoderLM(lm_config)
        prompts = rng.integers(0, 50, size=(2, 5))
        with pytest.raises(ValueError):
            model.generate(prompts, 3, prompt_lengths=np.array([5, 6]))
        with pytest.raises(ValueError):
            model.generate(prompts, 3, prompt_lengths=np.array([5]))


class TestNaiveSlidingWindowDivergence:
    def test_early_finished_rows_survive_window_slide(self, rng):
        """Rows that stop early (per-row budget) must not crash or corrupt
        the naive sliding-window path once decoding passes max_seq_len."""
        config = TransformerConfig(
            vocab_size=50, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_seq_len=16, seed=2,
        )
        model = DecoderLM(config)
        prompts = rng.integers(0, 50, size=(2, 4))
        out = model.generate(prompts, np.array([1, 30]), use_cache=False)
        # Row 1's long generation matches running it alone; row 0 produced
        # exactly its single token and padded the rest.
        solo = model.generate(prompts[1], 30, use_cache=False)
        np.testing.assert_array_equal(out[1], solo)
        np.testing.assert_array_equal(out[0, 5:], np.zeros(29, dtype=np.int64))

    def test_eos_divergence_past_window_also_survives(self, rng):
        config = TransformerConfig(
            vocab_size=50, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_seq_len=16, seed=2,
        )
        model = DecoderLM(config)
        prompts = rng.integers(0, 50, size=(2, 4))
        free = model.generate(prompts, 30, use_cache=False)
        eos = int(free[0, 4])  # row 0's first emission becomes EOS
        out = model.generate(prompts, 30, use_cache=False, eos_id=eos)
        assert out[0, 4] == eos

    def test_active_ragged_rows_past_window_still_rejected(self, rng):
        config = TransformerConfig(
            vocab_size=50, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            max_seq_len=16, seed=2,
        )
        model = DecoderLM(config)
        prompts = rng.integers(0, 50, size=(2, 6))
        with pytest.raises(ValueError):
            model.generate(
                prompts, 30, prompt_lengths=np.array([6, 3]), use_cache=False
            )


class TestRowLevelOps:
    """Row views / copy / clear — the continuous-batching cache primitives."""

    def test_rows_view_shares_buffers_and_lengths(self):
        cache = KVCache(num_layers=1, batch=3, num_heads=1, head_dim=2, capacity=8)
        view = cache.rows_view(0, 2)
        assert view.batch == 2
        view.append(0, np.ones((2, 1, 2, 2)), np.ones((2, 1, 2, 2)))
        view.advance(2)
        # Writes and length commits land in the parent.
        np.testing.assert_array_equal(cache.lengths, [2, 2, 0])
        assert cache.keys[0][0, 0, 1, 0] == 1.0
        assert cache.keys[0][2].max() == 0.0  # untouched row

    def test_row_view_prefills_one_row_of_a_live_cache(self):
        cache = KVCache(num_layers=1, batch=3, num_heads=1, head_dim=2, capacity=8)
        cache.set_lengths(np.array([4, 0, 2]))  # rows 0/2 mid-decode
        view = cache.row_view(1)
        view.append(0, np.full((1, 1, 3, 2), 7.0), np.full((1, 1, 3, 2), 7.0))
        view.advance(3)
        np.testing.assert_array_equal(cache.lengths, [4, 3, 2])
        assert cache.keys[0][1, 0, 2, 0] == 7.0
        assert cache.keys[0][0].max() == 0.0  # neighbours untouched

    def test_set_lengths_keeps_views_coherent(self):
        cache = KVCache(num_layers=1, batch=2, num_heads=1, head_dim=2, capacity=8)
        view = cache.rows_view(0, 2)
        cache.set_lengths(np.array([3, 1]))
        np.testing.assert_array_equal(view.lengths, [3, 1])
        view.reset()
        assert cache.max_length == 0

    def test_copy_row_moves_valid_prefix(self):
        cache = KVCache(num_layers=2, batch=3, num_heads=1, head_dim=2, capacity=8)
        k = np.arange(6.0).reshape(1, 1, 3, 2)
        cache.row_view(2).append(0, k, 2 * k)
        cache.row_view(2).append(1, 3 * k, 4 * k)
        cache.set_lengths(np.array([0, 0, 3]))
        cache.copy_row(2, 0)
        np.testing.assert_array_equal(cache.lengths, [3, 0, 3])
        np.testing.assert_array_equal(cache.keys[0][0, :, :3], k[0])
        np.testing.assert_array_equal(cache.values[1][0, :, :3], 4 * k[0])
        cache.copy_row(1, 1)  # src == dst is a no-op
        cache.clear_row(2)
        np.testing.assert_array_equal(cache.lengths, [3, 0, 0])

    def test_row_op_bounds_are_checked(self):
        cache = KVCache(num_layers=1, batch=2, num_heads=1, head_dim=2, capacity=4)
        with pytest.raises(ValueError):
            cache.rows_view(0, 3)
        with pytest.raises(ValueError):
            cache.rows_view(1, 1)
        with pytest.raises(ValueError):
            cache.copy_row(0, 2)
        with pytest.raises(ValueError):
            cache.clear_row(-1)

    def test_view_of_view_addresses_parent_rows(self):
        cache = KVCache(num_layers=1, batch=4, num_heads=1, head_dim=2, capacity=4)
        inner = cache.rows_view(1, 4).rows_view(1, 3)  # parent rows 2..3
        inner.set_lengths(np.array([2, 1]))
        np.testing.assert_array_equal(cache.lengths, [0, 0, 2, 1])


class TestPrefill:
    def test_prefill_matches_forward_last_logits(self, lm_config, rng):
        model = DecoderLM(lm_config)
        prompt = rng.integers(0, 50, size=6)
        cache = model.new_cache(1)
        logits = model.prefill(prompt, cache)
        full = model.forward(prompt[None, :]).data[:, -1]
        np.testing.assert_allclose(logits, full, atol=1e-12)
        np.testing.assert_array_equal(cache.lengths, [6])

    def test_prefill_into_row_view_of_live_cache(self, lm_config, rng):
        """Prefilling one row must not disturb a neighbouring mid-decode row."""
        model = DecoderLM(lm_config)
        cache = model.new_cache(2)
        model.prefill(rng.integers(0, 50, size=5), cache.row_view(0))
        before = [k.copy() for k in cache.keys]
        logits = model.prefill(rng.integers(0, 50, size=3), cache.row_view(1))
        assert logits.shape == (1, 50)
        np.testing.assert_array_equal(cache.lengths, [5, 3])
        for layer, k in enumerate(cache.keys):  # row 0 untouched
            np.testing.assert_array_equal(k[0], before[layer][0])

    def test_prefill_requires_empty_rows(self, lm_config, rng):
        model = DecoderLM(lm_config)
        cache = model.new_cache(1)
        model.prefill(rng.integers(0, 50, size=4), cache)
        with pytest.raises(ValueError):
            model.prefill(rng.integers(0, 50, size=4), cache)
