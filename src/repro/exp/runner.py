"""Experiment execution: caching, deterministic seeding, process fan-out.

The :class:`Runner` is the one place experiment functions actually get
called.  ``run`` executes a single :class:`ExperimentSpec`; ``sweep``
expands a :class:`SweepSpec` and fans the uncached points out across a
``multiprocessing`` pool.  Determinism guarantees:

* every point's seed derives from spec content only (never worker id or
  execution order), so a 4-worker sweep is bitwise identical to a serial
  one;
* every computed value is normalised through a JSON round-trip before it
  is returned or cached, so fresh and cached results compare equal.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.exp.cache import ResultCache
from repro.exp.registry import code_version, get_experiment
from repro.exp.result import Result, Series
from repro.exp.spec import ExperimentSpec, SweepSpec
from repro.utils.parallel import map_with_pool

__all__ = ["Runner", "RunnerStats"]


def _json_roundtrip(value: Any) -> Any:
    """Normalise a payload exactly as the cache will store it."""
    return json.loads(json.dumps(value, sort_keys=True))


def _execute_point(spec_dict: dict[str, Any]) -> tuple[Any, float]:
    """Worker entry point: resolve by name and execute one spec.

    Takes/returns plain picklable data so it works under both fork and
    spawn start methods; the registry is re-populated in the child by
    ``get_experiment`` importing the bundled studies.
    """
    spec = ExperimentSpec.from_dict(spec_dict)
    defn = get_experiment(spec.experiment)
    start = time.perf_counter()
    value = defn.fn(dict(spec.params), spec.point_seed(exclude=defn.eval_params))
    elapsed = time.perf_counter() - start
    return _json_roundtrip(value), elapsed


@dataclass
class RunnerStats:
    """Cache/computation counters for one Runner's lifetime."""

    hits: int = 0
    misses: int = 0
    computed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "computed": self.computed}


@dataclass
class Runner:
    """Runs experiment specs with caching and optional process parallelism.

    Parameters
    ----------
    workers:
        Pool size for sweeps.  ``0`` or ``1`` executes serially in-process;
        ``N > 1`` fans uncached points out over ``N`` processes.
    cache:
        Result cache; defaults to ``.repro_cache/`` under the cwd
        (``$REPRO_CACHE_DIR`` overrides).  Pass ``use_cache=False`` to
        bypass reads and writes entirely, or ``force=True`` to recompute
        while still refreshing stored entries.
    """

    workers: int = 0
    cache: ResultCache = field(default_factory=ResultCache)
    use_cache: bool = True
    force: bool = False
    stats: RunnerStats = field(default_factory=RunnerStats)

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> Result:
        """Execute (or fetch) a single experiment point."""
        return self.sweep([spec]).results[0]

    # ------------------------------------------------------------------
    def sweep(self, sweep_spec: SweepSpec | list[ExperimentSpec]) -> Series:
        """Execute every point of a sweep, parallelising the uncached ones."""
        points = (
            sweep_spec.points() if isinstance(sweep_spec, SweepSpec) else list(sweep_spec)
        )
        if not points:
            return Series()

        results: dict[int, Result] = {}
        pending: list[tuple[int, ExperimentSpec, str, str]] = []

        for index, spec in enumerate(points):
            defn = get_experiment(spec.experiment)
            version = code_version(defn)
            key = spec.content_key(version)
            payload = (
                self.cache.get(key) if self.use_cache and not self.force else None
            )
            if payload is not None and payload.get("code_version") == version:
                self.stats.hits += 1
                results[index] = Result(
                    spec=spec,
                    value=payload["value"],
                    elapsed_s=float(payload.get("elapsed_s", 0.0)),
                    cached=True,
                    key=key,
                )
            else:
                if self.use_cache and not self.force:
                    self.stats.misses += 1
                pending.append((index, spec, version, key))

        if pending:
            computed = self._execute_pending([spec for _, spec, _, _ in pending])
            for (index, spec, version, key), (value, elapsed) in zip(pending, computed):
                self.stats.computed += 1
                if self.use_cache:
                    self.cache.put(
                        key, ResultCache.payload(spec, version, value, elapsed)
                    )
                results[index] = Result(
                    spec=spec, value=value, elapsed_s=elapsed, cached=False, key=key
                )

        return Series(results=[results[i] for i in range(len(points))])

    # ------------------------------------------------------------------
    def _execute_pending(
        self, specs: list[ExperimentSpec]
    ) -> list[tuple[Any, float]]:
        return map_with_pool(
            _execute_point, [spec.to_dict() for spec in specs], self.workers
        )
