"""Sharding benchmark: tensor/pipeline-parallel crossbar serving.

Deploys the same crossbar-mode decoder onto 1/2/4/8-way tensor-parallel
meshes plus a two-chip pipeline point, serves an identical request trace
through every deployment (cross-checking bitwise token equality against
the 1-way baseline at every width), and reports the hardware-projected
shard-count scaling curve side by side with the Fig. 17
``ScalabilityModel`` analytic curve.  The payload is written to
``BENCH_shard.json`` at the repo root — the sharding perf-trajectory file
CI uploads as an artifact and gates on: the 4-way deployment must project
>= 1.5x the 1-way engine tokens/s.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exp import ExperimentSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def test_bench_shard(benchmark, print_header, fresh_runner):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    params = {"ways": (1, 4), "requests": 6, "new_tokens": 4} if smoke else {}
    spec = ExperimentSpec("bench_shard", params=params)

    result = benchmark.pedantic(lambda: fresh_runner.run(spec), rounds=1, iterations=1)
    value = result.value

    print_header(
        "Sharding benchmark — tensor-parallel ways vs projected engine throughput"
    )
    print(
        f"{'ways':>5} {'PUs':>4} {'arrays':>7} {'proj tok/s':>12} "
        f"{'norm':>6} {'analytic':>9} {'OCI bytes':>10} {'wall tok/s':>11}"
    )
    for point, analytic in zip(value["curve"], value["analytic_normalized"]):
        plan = point["plan"]
        print(
            f"{point['ways']:>5} {plan['pus_assigned']:>4} {plan['arrays_used']:>7} "
            f"{point['projected_tok_s']:>12.0f} {point['normalized_projected']:>6.2f} "
            f"{analytic:>9.2f} {point['traffic']['oci']['bytes']:>10.0f} "
            f"{point['wall_tok_s']:>11.1f}"
        )
    pipe = value["pipeline_2chip"]
    print(
        f"\npipeline 2-chip (2-way tensor): {pipe['projected_tok_s']:.0f} proj tok/s, "
        f"PCIe {pipe['traffic']['pcie6']['bytes']:.0f} B over "
        f"{pipe['traffic']['pcie6']['transfers']} handoffs"
    )
    gate = value["gate"]
    print(
        f"gate: {gate['ways']}-way projected speedup {gate['projected_speedup']}x "
        f"(threshold {gate['threshold']}x)"
    )

    if smoke:
        # Never clobber the committed full-grid trajectory with a smoke grid.
        print("smoke mode: skipping BENCH_shard.json update")
    else:
        BENCH_PATH.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BENCH_PATH}")

    # Perf-trajectory gates (ISSUE 5 acceptance criteria): 4-way tensor
    # parallelism must project >= 1.5x the 1-way engine tokens/s, and the
    # functional curve must scale without exceeding the analytic Fig. 17
    # bound.  Wider meshes may *plateau* (tiny shards tile poorly, and the
    # OCI aggregation grows with the shard count — exactly the shave the
    # paper reports), so the shape check tolerates a 5% dip but never a
    # regression below the preceding width's 0.95x.
    assert gate["projected_speedup"] >= gate["threshold"], gate
    normalized = [p["normalized_projected"] for p in value["curve"]]
    for prev, cur in zip(normalized, normalized[1:]):
        assert cur >= prev * 0.95, normalized
    for measured, analytic in zip(normalized, value["analytic_normalized"]):
        assert measured <= analytic * 1.05, (measured, analytic)
