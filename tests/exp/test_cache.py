"""Result cache: hit/miss behaviour and invalidation rules."""

from __future__ import annotations

import json

from repro.exp import ExperimentSpec, ResultCache, Runner


def make_runner(tmp_path, **kwargs) -> Runner:
    return Runner(cache=ResultCache(tmp_path / "cache"), **kwargs)


class TestCacheStore:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"value": 42})
        assert cache.get("deadbeef") == {"value": 42}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("abc", {"value": 1})
        (cache.root / "abc.json").write_text("{not json", encoding="utf-8")
        assert cache.get("abc") is None

    def test_entries_and_clear(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.run(ExperimentSpec("selfcheck", params={"n": 2}))
        runner.run(ExperimentSpec("selfcheck", params={"n": 3}))
        entries = runner.cache.entries()
        assert len(entries) == 2
        assert all(e.experiment == "selfcheck" for e in entries)
        assert runner.cache.clear(["selfcheck"]) == 2
        assert runner.cache.entries() == []


class TestRunnerCaching:
    def test_second_run_hits_cache(self, tmp_path):
        runner = make_runner(tmp_path)
        spec = ExperimentSpec("selfcheck", params={"n": 4})
        first = runner.run(spec)
        second = runner.run(spec)
        assert not first.cached
        assert second.cached
        assert second.value == first.value
        assert runner.stats.hits == 1 and runner.stats.computed == 1

    def test_spec_change_invalidates(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.run(ExperimentSpec("selfcheck", params={"n": 4}))
        other = runner.run(ExperimentSpec("selfcheck", params={"n": 5}))
        assert not other.cached

    def test_seed_change_invalidates(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.run(ExperimentSpec("selfcheck", params={"n": 4}, seed=0))
        other = runner.run(ExperimentSpec("selfcheck", params={"n": 4}, seed=1))
        assert not other.cached
        assert runner.stats.computed == 2

    def test_code_version_change_invalidates(self, tmp_path, monkeypatch):
        runner = make_runner(tmp_path)
        spec = ExperimentSpec("selfcheck", params={"n": 4})
        runner.run(spec)
        monkeypatch.setattr("repro.exp.runner.code_version", lambda defn: "edited")
        rerun = runner.run(spec)
        assert not rerun.cached

    def test_stale_payload_is_not_served(self, tmp_path):
        # A payload whose recorded code_version mismatches the current one
        # must be recomputed even if the file exists under the same key.
        runner = make_runner(tmp_path)
        spec = ExperimentSpec("selfcheck", params={"n": 4})
        result = runner.run(spec)
        path = runner.cache.root / f"{result.key}.json"
        payload = json.loads(path.read_text())
        payload["code_version"] = "stale"
        payload["value"] = {"poisoned": True}
        path.write_text(json.dumps(payload))
        rerun = runner.run(spec)
        assert not rerun.cached
        assert rerun.value == result.value

    def test_use_cache_false_bypasses(self, tmp_path):
        runner = make_runner(tmp_path, use_cache=False)
        spec = ExperimentSpec("selfcheck", params={"n": 4})
        runner.run(spec)
        assert runner.cache.entries() == []
        assert not runner.run(spec).cached

    def test_force_recomputes_but_refreshes(self, tmp_path):
        runner = make_runner(tmp_path)
        spec = ExperimentSpec("selfcheck", params={"n": 4})
        first = runner.run(spec)
        forced = make_runner(tmp_path, force=True)
        rerun = forced.run(spec)
        assert not rerun.cached
        assert rerun.value == first.value
        assert runner.run(spec).cached  # entry still present afterwards

    def test_cached_value_equals_fresh_value_exactly(self, tmp_path):
        # JSON round-trip normalisation: fresh and cached payloads compare
        # equal bit-for-bit, so downstream assertions never depend on
        # whether a result replayed from disk.
        runner = make_runner(tmp_path)
        spec = ExperimentSpec("selfcheck", params={"n": 16, "scale": 3.5})
        fresh = runner.run(spec)
        cached = runner.run(spec)
        assert json.dumps(fresh.value, sort_keys=True) == json.dumps(
            cached.value, sort_keys=True
        )
