"""Special Function Unit: pipelined non-linear operators (Section 3.1).

The digital PIM module hosts an SFU that evaluates Softmax, LayerNorm and
GELU with a fixed repertoire of pipelined floating-point primitives: max
search, subtraction, exponentiation *via Taylor series*, addition, division,
multiplication and square root.  Results are FP16-rounded between pipeline
stages (the paper computes non-linearities in FP16) and converted back to
integers afterwards.  Each SFU processes 256 inputs per cycle — the rate
chosen to balance digital-PIM GEMV throughput (256·1024/(64·3)/5 ≈ 273
operations per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SfuConfig", "SfuStats", "SpecialFunctionUnit"]

_LN2 = float(np.log(2.0))


@dataclass(frozen=True)
class SfuConfig:
    """SFU arithmetic and throughput parameters."""

    taylor_terms: int = 8  # terms of the exp() Taylor expansion
    inputs_per_cycle: int = 256  # Section 3.1's throughput balance
    fp16_rounding: bool = True  # round intermediate results to FP16

    def __post_init__(self) -> None:
        if self.taylor_terms < 2:
            raise ValueError("taylor_terms must be at least 2")
        if self.inputs_per_cycle < 1:
            raise ValueError("inputs_per_cycle must be positive")


@dataclass
class SfuStats:
    """Cycle and primitive-operation accounting."""

    cycles: int = 0
    primitive_ops: int = 0

    def charge(self, elements: int, stages: int, config: SfuConfig) -> None:
        waves = -(-elements // config.inputs_per_cycle)
        self.cycles += waves * stages
        self.primitive_ops += elements * stages


class SpecialFunctionUnit:
    """Functional + cost model of the SFU.

    All operators take and return float64 numpy arrays, but intermediate
    values are squeezed through FP16 when ``fp16_rounding`` is on, modelling
    the hardware datapath.  Accuracy against exact math is unit-tested.
    """

    def __init__(self, config: SfuConfig | None = None) -> None:
        self.config = config or SfuConfig()
        self.stats = SfuStats()

    # -- primitive helpers -------------------------------------------------
    def _round(self, x: np.ndarray) -> np.ndarray:
        if self.config.fp16_rounding:
            return x.astype(np.float16).astype(np.float64)
        return x

    def _exp_taylor(self, x: np.ndarray) -> np.ndarray:
        """exp(x) via range reduction and an N-term Taylor series.

        ``exp(x) = 2^k * exp(r)`` with ``r = x - k ln2, |r| <= ln2/2`` keeps
        the truncated series accurate across the softmax input range.
        """
        x = np.asarray(x, dtype=np.float64)
        k = np.rint(x / _LN2)
        r = self._round(x - k * _LN2)
        term = np.ones_like(r)
        acc = np.ones_like(r)
        for n in range(1, self.config.taylor_terms):
            term = self._round(term * r / n)
            acc = self._round(acc + term)
        return np.ldexp(acc, k.astype(int))

    # -- public operators ---------------------------------------------------
    def exp(self, x: np.ndarray) -> np.ndarray:
        """Pipelined exponential (Taylor series, FP16 datapath)."""
        x = np.asarray(x, dtype=np.float64)
        self.stats.charge(x.size, stages=self.config.taylor_terms, config=self.config)
        return self._exp_taylor(x)

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """max-subtract → exp (Taylor) → sum → divide, all pipelined."""
        x = np.asarray(x, dtype=np.float64)
        peak = x.max(axis=axis, keepdims=True)
        shifted = self._round(x - peak)
        exps = self._exp_taylor(shifted)
        total = self._round(exps.sum(axis=axis, keepdims=True))
        out = self._round(exps / total)
        # Stages: max search, subtract, taylor_terms, accumulate, divide.
        self.stats.charge(x.size, stages=self.config.taylor_terms + 4, config=self.config)
        return out

    def layernorm(
        self,
        x: np.ndarray,
        weight: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        eps: float = 1e-5,
    ) -> np.ndarray:
        """mean → subtract → square → mean → sqrt → divide (+ affine)."""
        x = np.asarray(x, dtype=np.float64)
        mean = self._round(x.mean(axis=-1, keepdims=True))
        centered = self._round(x - mean)
        var = self._round((centered**2).mean(axis=-1, keepdims=True))
        denom = self._round(np.sqrt(var + eps))
        out = self._round(centered / denom)
        if weight is not None:
            out = self._round(out * np.asarray(weight, dtype=np.float64))
        if bias is not None:
            out = self._round(out + np.asarray(bias, dtype=np.float64))
        self.stats.charge(x.size, stages=7, config=self.config)
        return out

    def gelu(self, x: np.ndarray) -> np.ndarray:
        """GELU via the sigmoid form ``x * σ(1.702 x)`` (exp-based pipeline)."""
        x = np.asarray(x, dtype=np.float64)
        z = self._round(1.702 * x)
        sig = self._round(1.0 / (1.0 + self._exp_taylor(-z)))
        out = self._round(x * sig)
        self.stats.charge(x.size, stages=self.config.taylor_terms + 3, config=self.config)
        return out

    def sqrt(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if (x < 0).any():
            raise ValueError("sqrt of negative input")
        self.stats.charge(x.size, stages=1, config=self.config)
        return self._round(np.sqrt(x))

    def reset_stats(self) -> None:
        self.stats = SfuStats()
