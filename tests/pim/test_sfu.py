"""Tests for the Special Function Unit's accuracy and cost accounting."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import special

from repro.pim import SfuConfig, SpecialFunctionUnit


@pytest.fixture
def sfu():
    return SpecialFunctionUnit()


class TestExp:
    def test_matches_numpy_within_fp16(self, sfu, rng):
        x = rng.uniform(-10, 10, size=200)
        out = sfu.exp(x)
        rel = np.abs(out - np.exp(x)) / np.exp(x)
        assert rel.max() < 5e-3  # FP16 datapath: ~1e-3 relative error

    def test_large_negative_underflow_to_zero(self, sfu):
        assert sfu.exp(np.array([-60.0]))[0] == pytest.approx(0.0, abs=1e-20)

    def test_more_taylor_terms_more_accurate(self, rng):
        x = rng.uniform(-3, 3, size=100)
        errs = []
        for terms in (3, 6, 10):
            unit = SpecialFunctionUnit(SfuConfig(taylor_terms=terms, fp16_rounding=False))
            errs.append(np.abs(unit.exp(x) - np.exp(x)).max())
        assert errs[0] > errs[1] > errs[2]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SfuConfig(taylor_terms=1)
        with pytest.raises(ValueError):
            SfuConfig(inputs_per_cycle=0)


class TestSoftmax:
    def test_rows_sum_to_one(self, sfu, rng):
        out = sfu.softmax(rng.normal(size=(8, 16)))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(8), atol=2e-3)

    def test_close_to_exact_softmax(self, sfu, rng):
        x = rng.normal(size=(4, 10)) * 3
        exact = np.exp(x - x.max(-1, keepdims=True))
        exact /= exact.sum(-1, keepdims=True)
        np.testing.assert_allclose(sfu.softmax(x), exact, atol=2e-3)

    def test_stable_under_large_inputs(self, sfu):
        out = sfu.softmax(np.array([[500.0, 500.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]], atol=1e-3)


class TestLayerNormGelu:
    def test_layernorm_statistics(self, sfu, rng):
        out = sfu.layernorm(rng.normal(3.0, 5.0, size=(6, 64)))
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(6), atol=1e-2)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(6), atol=2e-2)

    def test_layernorm_affine(self, sfu, rng):
        x = rng.normal(size=(3, 8))
        weight, bias = np.full(8, 2.0), np.full(8, 1.0)
        out = sfu.layernorm(x, weight=weight, bias=bias)
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(3), atol=2e-2)

    def test_gelu_close_to_exact(self, sfu, rng):
        x = rng.uniform(-4, 4, size=200)
        exact = x * 0.5 * (1 + special.erf(x / np.sqrt(2)))
        # The sigmoid approximation of GELU is itself ~1e-2 accurate.
        assert np.abs(sfu.gelu(x) - exact).max() < 2.5e-2

    def test_sqrt(self, sfu):
        np.testing.assert_allclose(sfu.sqrt(np.array([4.0, 9.0])), [2, 3], atol=1e-2)
        with pytest.raises(ValueError):
            sfu.sqrt(np.array([-1.0]))


class TestCostAccounting:
    def test_cycles_scale_with_elements(self):
        sfu = SpecialFunctionUnit(SfuConfig(inputs_per_cycle=256))
        sfu.softmax(np.zeros((1, 256)))
        small = sfu.stats.cycles
        sfu.reset_stats()
        sfu.softmax(np.zeros((4, 256)))
        assert sfu.stats.cycles == 4 * small

    def test_256_inputs_per_cycle_default(self):
        assert SfuConfig().inputs_per_cycle == 256

    def test_reset(self, sfu):
        sfu.exp(np.zeros(10))
        assert sfu.stats.cycles > 0
        sfu.reset_stats()
        assert sfu.stats.cycles == 0

    def test_fp16_rounding_toggle(self, rng):
        x = rng.normal(size=50)
        fp16 = SpecialFunctionUnit(SfuConfig(fp16_rounding=True))
        fp64 = SpecialFunctionUnit(SfuConfig(fp16_rounding=False))
        err16 = np.abs(fp16.exp(x) - np.exp(x)).max()
        err64 = np.abs(fp64.exp(x) - np.exp(x)).max()
        assert err64 <= err16
