"""Attention-head shard placement for the analog attention path.

The dynamic-operand attention path (``ServingEngine.deploy(attention=
"analog")``) gives every ``(layer, head)`` pair its own pair of crossbar
KV operand tiles.  On a multi-chip :class:`~repro.dist.mesh.DeviceMesh`
those tiles must live *somewhere*: this module derives a deterministic
placement from the deployment's :class:`~repro.dist.plan.ShardPlan`
(or, planless, from the raw mesh) and exposes it through the small
``head_chip``/``block_chip`` surface the
:class:`~repro.pim.attention.CrossbarAttentionExecutor` consults when it
charges per-token KV-write traffic to the interconnect ledger: a head
co-located with its block's chip writes over the on-chip link, a remote
head over the chip-to-chip link.

The policy is round-robin *anchored at the block's own chip*: head 0 of
every layer is co-located (the common case stays on the cheap link), and
the remaining heads rotate over the chips the plan actually uses, which
spreads KV-write wear evenly across the mesh instead of concentrating
every dynamic write on the pipeline-stage chip.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AttentionPlacement", "place_attention_heads"]


@dataclass(frozen=True)
class AttentionPlacement:
    """Immutable ``(layer, head) -> chip`` map for KV operand tiles.

    Built by :func:`place_attention_heads`; consumed by the crossbar
    attention executor's traffic accounting.
    """

    #: chip index for each ``(layer, head)`` pair
    head_chips: dict
    #: chip index of each transformer block (pipeline stage)
    block_chips: dict
    #: chips participating in the placement, in rotation order
    chips: tuple

    def head_chip(self, layer: int, head: int) -> int:
        """Chip holding the KV operand tiles of ``(layer, head)``."""
        return self.head_chips[(layer, head)]

    def block_chip(self, layer: int) -> int:
        """Chip executing transformer block ``layer``."""
        return self.block_chips.get(layer, self.chips[0])

    def colocated_fraction(self) -> float:
        """Fraction of heads placed on their own block's chip."""
        if not self.head_chips:
            return 0.0
        hits = sum(
            1
            for (layer, _head), chip in self.head_chips.items()
            if chip == self.block_chip(layer)
        )
        return hits / len(self.head_chips)

    def describe(self) -> dict:
        """JSON-friendly placement summary."""
        return {
            "heads": len(self.head_chips),
            "chips": list(self.chips),
            "colocated_fraction": round(self.colocated_fraction(), 4),
        }


def place_attention_heads(plan_or_mesh, num_layers: int, num_heads: int) -> AttentionPlacement:
    """Assign every attention head's KV operand tiles to a mesh chip.

    Parameters
    ----------
    plan_or_mesh:
        A :class:`~repro.dist.plan.ShardPlan` (block placement is read
        from ``chip_of_block``) or a bare
        :class:`~repro.dist.mesh.DeviceMesh` (blocks spread round-robin
        over all chips).
    num_layers / num_heads:
        Attention geometry of the deployed model.

    Returns
    -------
    AttentionPlacement
        Head 0 of each layer sits on the block's own chip; subsequent
        heads rotate over the participating chips from that anchor, so
        single-chip meshes are fully co-located and multi-chip meshes
        split KV-write traffic between the on-chip and chip-to-chip
        links deterministically.
    """
    if num_layers < 1 or num_heads < 1:
        raise ValueError("num_layers and num_heads must be positive")
    chip_of_block = getattr(plan_or_mesh, "chip_of_block", None)
    if chip_of_block is not None:
        mesh = plan_or_mesh.mesh
        chips = tuple(sorted(set(chip_of_block.values()))) or (0,)
        block_chips = {
            layer: chip_of_block.get(layer, chips[layer % len(chips)])
            for layer in range(num_layers)
        }
    else:
        mesh = plan_or_mesh
        chips = tuple(range(mesh.num_chips))
        block_chips = {layer: chips[layer % len(chips)] for layer in range(num_layers)}
    head_chips = {}
    for layer in range(num_layers):
        anchor = chips.index(block_chips[layer])
        for head in range(num_heads):
            head_chips[(layer, head)] = chips[(anchor + head) % len(chips)]
    return AttentionPlacement(
        head_chips=head_chips, block_chips=block_chips, chips=chips
    )
