"""Kernel-engine tests: fast/reference bitwise equivalence, policy plumbing.

The fast kernel is only allowed to exist because it is *indistinguishable*
from the reference pipeline: the grid below checks bitwise-equal outputs and
identical :class:`GemvStats` over every cell type, noise level and
tile-spanning shape, including the noiseless shortcut and its saturation
fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram import (
    CELL_TYPES,
    CrossbarConfig,
    DEFAULT_NOISE,
    GemvStats,
    KernelPolicy,
    MLC2,
    ProgrammedMatrix,
    SLC,
    bit_serial_gemv,
    get_default_kernel_policy,
    kernel_policy,
    set_default_kernel_policy,
)

REFERENCE = KernelPolicy(mode="reference")
FAST = KernelPolicy(mode="fast")

# Odd shapes spanning multiple row and column tiles: (batch, in, out).
SHAPES = [(1, 16, 4), (5, 70, 33), (3, 200, 7), (2, 129, 65)]


def _config_for(cell_name: str) -> CrossbarConfig:
    """3-/4-bit cells need fewer rows to fit the 7-bit physical SAR ADC."""
    if CELL_TYPES[cell_name].bits <= 2:
        return CrossbarConfig()
    return CrossbarConfig(rows=16, cols=32)


class TestFastReferenceEquivalence:
    @pytest.mark.parametrize("cell_name", sorted(CELL_TYPES))
    @pytest.mark.parametrize("noisy", [False, True], ids=["noiseless", "calibrated"])
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_bitwise_equal_with_identical_stats(self, cell_name, noisy, shape):
        cell = CELL_TYPES[cell_name]
        sigma = DEFAULT_NOISE.sigma(cell) if noisy else 0.0
        batch, in_f, out_f = shape
        import zlib

        data_rng = np.random.default_rng(zlib.crc32(repr((cell_name, noisy, shape)).encode()))
        x = data_rng.integers(-128, 128, size=(batch, in_f))
        w = data_rng.integers(-128, 128, size=(out_f, in_f))
        matrix = ProgrammedMatrix(
            w,
            cell,
            noise_sigma=sigma,
            rng=np.random.default_rng(7),
            config=_config_for(cell_name),
        )
        ref_stats, fast_stats = GemvStats(), GemvStats()
        ref = matrix.gemv(x, stats=ref_stats, policy=REFERENCE)
        fast = matrix.gemv(x, stats=fast_stats, policy=FAST)
        np.testing.assert_array_equal(ref, fast)
        assert ref_stats == fast_stats

    def test_noiseless_shortcut_is_exact(self, rng):
        x = rng.integers(-128, 128, size=(6, 100))
        w = rng.integers(-128, 128, size=(12, 100))
        matrix = ProgrammedMatrix(w, SLC, noise_sigma=0.0)
        assert matrix.saturation_free  # random SLC columns stay below full scale
        np.testing.assert_array_equal(matrix.gemv(x, policy=FAST), x @ w.T)

    def test_saturating_matrix_falls_back_and_still_matches_reference(self):
        """All-max weights drive bitlines to full scale: the shortcut must
        not engage, and the general fast path must track the reference's
        clipping exactly (including the saturated-conversion count)."""
        w = np.full((4, 64), 127, dtype=np.int64)
        x = np.full((2, 64), 127, dtype=np.int64)
        matrix = ProgrammedMatrix(w, SLC, noise_sigma=0.0)
        assert not matrix.saturation_free
        ref_stats, fast_stats = GemvStats(), GemvStats()
        ref = matrix.gemv(x, stats=ref_stats, policy=REFERENCE)
        fast = matrix.gemv(x, stats=fast_stats, policy=FAST)
        np.testing.assert_array_equal(ref, fast)
        assert ref_stats == fast_stats
        assert fast_stats.saturated_conversions > 0

    def test_one_shot_wrapper_accepts_policy(self, rng):
        x = rng.integers(-128, 128, size=(2, 32))
        w = rng.integers(-128, 128, size=(5, 32))
        a = bit_serial_gemv(x, w, MLC2, 0.05, rng=np.random.default_rng(3), policy=REFERENCE)
        b = bit_serial_gemv(x, w, MLC2, 0.05, rng=np.random.default_rng(3), policy=FAST)
        np.testing.assert_array_equal(a, b)


class TestKernelPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            KernelPolicy(mode="einsum")
        with pytest.raises(ValueError):
            KernelPolicy(compute_dtype="float16")

    def test_default_policy_roundtrip(self):
        original = get_default_kernel_policy()
        previous = set_default_kernel_policy(KernelPolicy(mode="reference"))
        try:
            assert previous == original
            assert get_default_kernel_policy().mode == "reference"
        finally:
            set_default_kernel_policy(original)

    def test_context_manager_restores(self):
        original = get_default_kernel_policy()
        with kernel_policy(KernelPolicy(mode="reference", compute_dtype="float64")):
            assert get_default_kernel_policy().compute_dtype == "float64"
        assert get_default_kernel_policy() == original

    def test_matrix_level_policy_wins_over_default(self, rng):
        x = rng.integers(-128, 128, size=(2, 16))
        w = rng.integers(-128, 128, size=(3, 16))
        matrix = ProgrammedMatrix(w, SLC, policy=REFERENCE)
        # Dispatch must not blow up and must match the fast default result.
        np.testing.assert_array_equal(matrix.gemv(x), matrix.gemv(x, policy=FAST))


class TestProgrammedMemoryLayout:
    def test_noiseless_keeps_single_integer_copy(self, rng):
        w = rng.integers(-128, 128, size=(4, 16))
        matrix = ProgrammedMatrix(w, SLC, noise_sigma=0.0)
        assert matrix.is_noiseless
        assert matrix.planes is matrix.slices.values  # no redundant float copy

    def test_noisy_planes_use_policy_compute_dtype(self, rng):
        w = rng.integers(-128, 128, size=(4, 16))
        f32 = ProgrammedMatrix(w, MLC2, noise_sigma=0.05)
        assert f32.planes.dtype == np.float32  # default policy
        f64 = ProgrammedMatrix(
            w, MLC2, noise_sigma=0.05, policy=KernelPolicy(compute_dtype="float64")
        )
        assert f64.planes.dtype == np.float64

    def test_programmed_backcompat_view_is_float(self, rng):
        w = rng.integers(-128, 128, size=(4, 16))
        matrix = ProgrammedMatrix(w, SLC, noise_sigma=0.0)
        assert matrix.programmed.dtype == np.float64
        np.testing.assert_array_equal(matrix.programmed, matrix.slices.values)
