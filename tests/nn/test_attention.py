"""Tests for multi-head attention, masks and static-linear enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MultiHeadAttention, Tensor, causal_mask


class TestCausalMask:
    def test_blocks_future_positions_only(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert not mask[2, 1] and not mask[2, 2]
        assert mask[2, 3]

    def test_first_row_sees_only_itself(self):
        mask = causal_mask(5)
        np.testing.assert_array_equal(mask[0], [False, True, True, True, True])


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        mha = MultiHeadAttention(16, 4, rng=rng)
        out = mha(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_causal_blocks_future_information(self, rng):
        mha = MultiHeadAttention(8, 2, causal=True, rng=rng)
        x = rng.normal(size=(1, 6, 8))
        base = mha(Tensor(x)).data
        # Changing a future token must not change earlier outputs.
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = mha(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-10)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_non_causal_mixes_all_positions(self, rng):
        mha = MultiHeadAttention(8, 2, causal=False, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        base = mha(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 3] += 10.0
        out = mha(Tensor(perturbed)).data
        assert not np.allclose(out[0, 0], base[0, 0])

    def test_padding_mask_blocks_keys(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        padding = np.array([[False, False, False, True]])  # last key masked
        masked = mha(Tensor(x), attention_mask=padding).data
        perturbed = x.copy()
        perturbed[0, 3] += 100.0
        masked_perturbed = mha(Tensor(perturbed), attention_mask=padding).data
        # Outputs at masked *key* positions still change (it is a query too),
        # but all other positions must ignore the masked key entirely.
        np.testing.assert_allclose(masked[0, :3], masked_perturbed[0, :3], atol=1e-10)

    def test_attention_rows_are_convex_combination(self, rng):
        # With an identity value projection the output of one head lies in the
        # convex hull of the values; we check boundedness as a proxy.
        mha = MultiHeadAttention(4, 1, rng=rng)
        mha.w_v.weight.data = np.eye(4)
        mha.w_v.bias.data = np.zeros(4)
        mha.w_proj.weight.data = np.eye(4)
        mha.w_proj.bias.data = np.zeros(4)
        x = rng.normal(size=(1, 5, 4))
        out = mha(Tensor(x)).data
        assert out.max() <= x.max() + 1e-9
        assert out.min() >= x.min() - 1e-9

    def test_static_linears_enumeration(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        linears = mha.static_linears()
        assert set(linears) == {"w_q", "w_k", "w_v", "w_proj"}
        assert all(l.weight.shape == (8, 8) for l in linears.values())

    def test_gradients_reach_all_projections(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        mha(Tensor(rng.normal(size=(2, 3, 8)))).sum().backward()
        for linear in mha.static_linears().values():
            assert linear.weight.grad is not None
            assert np.abs(linear.weight.grad).sum() > 0
