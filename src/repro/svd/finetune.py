"""Fine-tuning loop with singular-value gradient accumulation.

Implements Algorithm 1 steps 3-4: after truncation, the model is re-trained
for 1-3 epochs with AdamW; during training the magnitude of the loss gradient
with respect to every singular value is accumulated.  Those accumulated
magnitudes drive the SLC/MLC rank split, and their concentration into the
top ranks is the *gradient redistribution* effect of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.data import ArrayDataset, BatchIterator
from repro.nn.losses import cross_entropy, lm_cross_entropy, mse_loss
from repro.nn.modules import Module
from repro.nn.optim import AdamW, clip_grad_norm
from repro.nn.tensor import Tensor, default_dtype
from repro.svd.svd_linear import SVDLinear

__all__ = ["FinetuneResult", "finetune", "task_loss", "GradientSnapshot", "sigma_gradient_snapshot"]


@dataclass
class FinetuneResult:
    """Outcome of the fine-tuning stage."""

    epoch_losses: list[float]
    sigma_gradients: dict[str, np.ndarray]  # layer name -> mean |dL/dsigma|
    steps: int

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1]


@dataclass
class GradientSnapshot:
    """Per-layer gradient magnitudes from a single evaluation pass (Fig. 11)."""

    per_layer: dict[str, np.ndarray] = field(default_factory=dict)

    def concentration(self, top_fraction: float = 0.1) -> dict[str, float]:
        """Share of total gradient mass carried by the top ``top_fraction`` ranks."""
        out = {}
        for name, grads in self.per_layer.items():
            n_top = max(1, int(round(len(grads) * top_fraction)))
            sorted_desc = np.sort(grads)[::-1]
            total = sorted_desc.sum()
            out[name] = float(sorted_desc[:n_top].sum() / total) if total > 0 else 0.0
        return out


def task_loss(task_type: str) -> Callable[[Tensor, np.ndarray], Tensor]:
    """Loss builder for the three task families used in the paper."""
    if task_type == "classification":
        return cross_entropy
    if task_type == "regression":
        return lambda logits, targets: mse_loss(logits.reshape(-1), targets)
    if task_type == "lm":
        return lm_cross_entropy
    raise ValueError(f"unknown task_type {task_type!r}")


def _svd_layers(model: Module) -> dict[str, SVDLinear]:
    return {
        name: module
        for name, module in model.named_modules()
        if isinstance(module, SVDLinear)
    }


def finetune(
    model: Module,
    train_data: ArrayDataset,
    task_type: str,
    epochs: int = 2,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    weight_decay: float = 0.01,
    max_grad_norm: float = 1.0,
    rng: np.random.Generator | None = None,
    compute_dtype: str | None = None,
) -> FinetuneResult:
    """Fine-tune ``model`` and accumulate ``|dL/dσ|`` on every SVDLinear.

    Works for all three task families: ``classification`` (integer labels),
    ``regression`` (float targets) and ``lm`` (next-token id matrices).

    ``compute_dtype`` ("float32"/"float64", default: leave the process-wide
    tensor dtype alone) scopes the training loop's activation/gradient
    precision via :func:`repro.nn.tensor.default_dtype`.  float32 roughly
    halves training memory traffic; its convergence stays within tolerance
    of float64 (unit-tested) because INT8 deployment quantization dominates
    any float32 rounding.  Parameters keep the dtype they were created with.
    """
    rng = rng or np.random.default_rng(0)
    loss_fn = task_loss(task_type)
    svd_layers = _svd_layers(model)
    for layer in svd_layers.values():
        layer.reset_sigma_gradient()

    optimizer = AdamW(model.parameters(), lr=learning_rate, weight_decay=weight_decay)
    model.train()
    epoch_losses: list[float] = []
    steps = 0
    with default_dtype(compute_dtype):
        for _ in range(epochs):
            batches = BatchIterator(train_data, batch_size, shuffle=True, rng=rng)
            running, count = 0.0, 0
            for inputs, targets in batches:
                logits = model(inputs)
                loss = loss_fn(logits, targets)
                model.zero_grad()
                loss.backward()
                clip_grad_norm(model.parameters(), max_grad_norm)
                for layer in svd_layers.values():
                    layer.record_sigma_gradient()
                optimizer.step()
                running += float(loss.data)
                count += 1
                steps += 1
            epoch_losses.append(running / max(count, 1))
    model.eval()

    sigma_gradients = {
        name: layer.mean_sigma_gradient() for name, layer in svd_layers.items()
    }
    return FinetuneResult(
        epoch_losses=epoch_losses, sigma_gradients=sigma_gradients, steps=steps
    )


def sigma_gradient_snapshot(
    model: Module,
    eval_data: ArrayDataset,
    task_type: str,
    batch_size: int = 32,
    max_batches: int = 4,
    rng: np.random.Generator | None = None,
) -> GradientSnapshot:
    """One-shot gradient magnitudes per rank without updating weights.

    Used to reproduce Fig. 11(b) (post-SVD, pre-fine-tune) and as a generic
    probe of gradient concentration.
    """
    rng = rng or np.random.default_rng(0)
    loss_fn = task_loss(task_type)
    svd_layers = _svd_layers(model)
    for layer in svd_layers.values():
        layer.reset_sigma_gradient()

    was_training = model.training
    model.eval()
    batches = BatchIterator(eval_data, batch_size, shuffle=False, rng=rng)
    for i, (inputs, targets) in enumerate(batches):
        if i >= max_batches:
            break
        loss = loss_fn(model(inputs), targets)
        model.zero_grad()
        loss.backward()
        for layer in svd_layers.values():
            layer.record_sigma_gradient()
    model.zero_grad()
    model.train(was_training)

    snapshot = GradientSnapshot(
        per_layer={name: layer.mean_sigma_gradient() for name, layer in svd_layers.items()}
    )
    for layer in svd_layers.values():
        layer.reset_sigma_gradient()
    return snapshot
