"""ASADI / ASADI† baselines: SLC-only analog-digital RRAM PIM (HPCA'24).

ASADI is the paper's closest competitor: the same class of analog RRAM PIM
for linear layers, but (1) **SLC only** — it never exploits MLC density or
throughput, and (2) **FP32** — its published configuration keeps attention
and (in the original) linear layers at full precision, exploiting diagonal
data locality and token pruning inside attention.

Two variants match Section 5.3:

- ``AsadiBaseline``  — original FP32 configuration;
- ``AsadiDaggerBaseline`` ("ASADI†") — the paper's conservative variant with
  INT8 linear layers, i.e. HyFlexPIM's own analog path at a 100 % SLC rate.

Because ASADI's internal micro-architecture is not reproducible from this
paper alone, its FP32 overhead factors are calibrated constants (see
``BaselineCosts``), chosen inside physically sensible ranges to land on the
relative gaps Figs. 14-16 report; EXPERIMENTS.md tracks paper-vs-model.
"""

from __future__ import annotations

from repro.arch.baselines.base import BaselineCosts, BaselineModel
from repro.arch.energy import EnergyBreakdown, HyFlexPimEnergyModel
from repro.arch.config import HardwareConfig
from repro.models.configs import ModelSpec

__all__ = ["AsadiDaggerBaseline", "AsadiBaseline"]


class AsadiDaggerBaseline(BaselineModel):
    """ASADI† — INT8 linear layers on SLC-only analog PIM."""

    name = "asadi-dagger"

    def __init__(
        self,
        costs: BaselineCosts | None = None,
        hardware: HardwareConfig | None = None,
    ) -> None:
        super().__init__(costs)
        self._pim = HyFlexPimEnergyModel(hardware)

    def linear_layers_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        # Identical analog arrays at a 100% SLC rate (no SVD, dense mapping):
        # dense (out x in) matrices instead of factored pairs.
        d, ff = spec.d_model, spec.d_ff
        breakdown = EnergyBreakdown()
        for out_f, in_f in [(d, d)] * 4 + [(ff, d), (d, ff)]:
            layer = self._pim.gemv_energy(out_f, in_f, cell_bits=1, tokens=float(seq_len))
            for category, pj in layer.categories.items():
                breakdown.add(category, pj * spec.num_layers)
        return breakdown

    def _attention_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        """FP32 digital-PIM attention with ASADI's locality compression."""
        attn = self._pim.attention_energy(spec, seq_len)
        factor = self.costs.fp32_energy_factor * self.costs.asadi_attention_keep_ratio
        scaled = EnergyBreakdown()
        for category, pj in attn.categories.items():
            # Writes/SFU stay INT8/FP16-ish; the dot-product path is FP32.
            if category in ("attention_dot", "wl_drv_digital", "sh_sa", "sram_access"):
                scaled.add(category, pj * factor)
            else:
                scaled.add(category, pj)
        return scaled

    def end_to_end_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        breakdown = self.linear_layers_energy(spec, seq_len)
        breakdown.merge(self._attention_energy(spec, seq_len))
        return breakdown

    def inference_time_s(self, spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
        """Same PIM timing methodology, dense SLC mapping + FP32 attention."""
        from repro.arch.latency import HyFlexPimLatencyModel

        attention_factor = (
            self.costs.fp32_digital_pim_time_factor * self.costs.asadi_attention_keep_ratio
        )
        latency = HyFlexPimLatencyModel(
            self._pim.hw, attention_time_factor=attention_factor
        )
        return latency.inference_time_s(
            spec, seq_len, slc_rate=1.0, dense=True, mode=mode
        )


class AsadiBaseline(AsadiDaggerBaseline):
    """Original ASADI: FP32 linear layers as well (4 bytes per weight)."""

    name = "asadi"

    #: FP32 linear-layer energy versus the INT8 variant.  Storing FP32 in SLC
    #: quadruples bit-slices, but ASADI's diagonal-format compression recovers
    #: part of it; the net factor is calibrated to the Fig. 14 gap.
    FP32_LINEAR_FACTOR = 2.24

    def linear_layers_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        base = super().linear_layers_energy(spec, seq_len)
        scaled = EnergyBreakdown()
        for category, pj in base.categories.items():
            scaled.add(category, pj * self.FP32_LINEAR_FACTOR)
        return scaled

    def inference_time_s(self, spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
        # FP32 weights quadruple the SLC array footprint, quartering the
        # sustainable pipeline concurrency versus the INT8 variant; the
        # locality compression claws back the same share as in energy.
        return super().inference_time_s(spec, seq_len, mode) * self.FP32_LINEAR_FACTOR
