"""Procedural image classification set replacing CIFAR-10 (ViT experiments).

Ten pattern classes with per-sample jitter and additive noise.  A small ViT
separates them well above chance, and — as with the text tasks — accuracy
degrades smoothly as RRAM weight noise rises, which is the behaviour the
Fig. 12 ViT column exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import ArrayDataset

__all__ = ["VisionSpec", "CIFAR10_LIKE_CLASSES", "make_vision_dataset", "VisionData"]

CIFAR10_LIKE_CLASSES = (
    "h_stripes",
    "v_stripes",
    "checker",
    "diagonal",
    "center_blob",
    "corner_blob",
    "gradient_x",
    "gradient_y",
    "rings",
    "cross",
)


@dataclass(frozen=True)
class VisionSpec:
    """Descriptor of the synthetic vision dataset."""

    image_size: int = 32
    in_channels: int = 3
    num_classes: int = 10
    train_size: int = 400
    test_size: int = 120
    noise_std: float = 0.25


@dataclass
class VisionData:
    spec: VisionSpec
    train: ArrayDataset
    test: ArrayDataset


def _pattern(class_id: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one (size, size) grayscale pattern with geometric jitter."""
    yy, xx = np.mgrid[0:size, 0:size].astype(float)
    period = rng.integers(3, 7)
    phase = rng.integers(0, period)
    cx, cy = size / 2 + rng.normal(0, 1.5), size / 2 + rng.normal(0, 1.5)
    name = CIFAR10_LIKE_CLASSES[class_id]
    if name == "h_stripes":
        img = ((yy + phase) // period) % 2
    elif name == "v_stripes":
        img = ((xx + phase) // period) % 2
    elif name == "checker":
        img = (((xx + phase) // period) + ((yy + phase) // period)) % 2
    elif name == "diagonal":
        img = ((xx + yy + phase) // period) % 2
    elif name == "center_blob":
        r2 = (xx - cx) ** 2 + (yy - cy) ** 2
        img = (r2 < (size / 3.2) ** 2).astype(float)
    elif name == "corner_blob":
        corner = rng.integers(0, 4)
        ox = 0 if corner in (0, 2) else size - 1
        oy = 0 if corner in (0, 1) else size - 1
        r2 = (xx - ox) ** 2 + (yy - oy) ** 2
        img = (r2 < (size / 2.5) ** 2).astype(float)
    elif name == "gradient_x":
        img = xx / (size - 1)
    elif name == "gradient_y":
        img = yy / (size - 1)
    elif name == "rings":
        r = np.sqrt((xx - cx) ** 2 + (yy - cy) ** 2)
        img = ((r + phase) // period) % 2
    else:  # cross
        width = max(2, size // 8)
        img = (
            (np.abs(xx - cx) < width) | (np.abs(yy - cy) < width)
        ).astype(float)
    return img.astype(float)


def make_vision_dataset(spec: VisionSpec | None = None, seed: int = 0) -> VisionData:
    """Generate the CIFAR-10-like dataset with per-channel color jitter."""
    spec = spec or VisionSpec()
    rng = np.random.default_rng(seed)
    total = spec.train_size + spec.test_size
    images = np.zeros((total, spec.in_channels, spec.image_size, spec.image_size))
    labels = rng.integers(0, spec.num_classes, size=total)
    for i in range(total):
        base = _pattern(int(labels[i]), spec.image_size, rng)
        color = rng.uniform(0.5, 1.5, size=spec.in_channels)
        for c in range(spec.in_channels):
            images[i, c] = base * color[c]
    images += rng.normal(0.0, spec.noise_std, size=images.shape)
    # Normalize to roughly zero-mean unit-variance, as torchvision transforms do.
    images = (images - images.mean()) / (images.std() + 1e-9)
    train = ArrayDataset(images[: spec.train_size], labels[: spec.train_size])
    test = ArrayDataset(images[spec.train_size :], labels[spec.train_size :])
    return VisionData(spec=spec, train=train, test=test)
