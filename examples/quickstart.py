"""Quickstart: train a tiny encoder, compile it for HyFlexPIM, evaluate.

Walks the full paper workflow in miniature:

1. train a BERT-like encoder on a synthetic sst2-style sentiment task
   (via the shared :func:`repro.exp.train_encoder` builder);
2. ``compile`` — SVD decomposition, hard-threshold truncation, fine-tuning
   with singular-value gradient accumulation (Algorithm 1);
3. ``deploy`` — map protected ranks to SLC and the rest to 2-bit MLC, with
   BER-calibrated programming noise (Eq. 5);
4. evaluate accuracy across SLC protection rates (a mini Fig. 12 column),
   fanning the rate points out over two worker processes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import HyFlexPim
from repro.datasets import make_glue_task
from repro.exp import train_encoder


def main() -> None:
    print("== HyFlexPIM quickstart ==")
    data = make_glue_task("sst2", seed=0)

    print("[1/4] training the dense encoder")
    model = train_encoder(
        data,
        num_layers=2,
        d_ff=64,
        epochs=4,
        on_epoch=lambda epoch, loss: print(f"  epoch {epoch}: train loss {loss:.4f}"),
    )

    print("[2/4] compiling: SVD + hard threshold + gradient redistribution")
    hfp = HyFlexPim(protect_fraction=0.1, epochs=2, batch_size=32, learning_rate=2e-3)
    compiled = hfp.compile(model, data.train, task_type="classification")
    plan = compiled.plan
    print(f"  factored layers: {len(plan.layers)}, total ranks: {plan.total_ranks()}")

    print("[3/4] deploying on hybrid SLC/MLC analog PIM")
    baseline = hfp.ideal_reference(compiled, data.test)
    print(f"  noise-free INT8 baseline accuracy: {baseline:.3f}")

    print("[4/4] accuracy vs SLC protection rate (mini Fig. 12, 2 workers)")
    rates = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)
    sweep = hfp.protection_sweep(compiled, data.test, rates=rates, workers=2)
    for rate, score in sweep.items():
        marker = " <- all-MLC" if rate == 0.0 else (" <- all-SLC" if rate == 1.0 else "")
        print(f"  SLC {rate * 100:5.1f}%: accuracy {score:.3f}{marker}")

    drop_full_mlc = baseline - sweep[0.0]
    drop_protected = baseline - sweep[0.1]
    print(
        f"\nfull-MLC drop {drop_full_mlc * 100:.1f} pts vs "
        f"10%-protected drop {drop_protected * 100:.1f} pts "
        "(protection recovers most of the loss, as in the paper)"
    )


if __name__ == "__main__":
    main()
