"""SPRINT baseline: in-RRAM token pruning + digital processing (MICRO'22).

SPRINT keeps weights in on-chip RRAM *storage* (no off-chip DRAM), prunes
74.6 % of attention tokens with an analog in-memory MSB Q·K pre-computation,
and executes all remaining work — linear layers included — on a conventional
digital INT8 datapath.  Only attention data movement benefits; the FFN path
is untouched, which is why HyFlexPIM's advantage over SPRINT is largest at
short sequence lengths (Section 6.3.2).
"""

from __future__ import annotations

from repro.arch.baselines.base import BaselineModel
from repro.arch.energy import EnergyBreakdown
from repro.models.configs import ModelSpec

__all__ = ["SprintBaseline"]


class SprintBaseline(BaselineModel):
    name = "sprint"

    def linear_layers_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        c = self.costs
        macs = self._linear_macs(spec, seq_len)
        weight_bytes = self._weight_bytes(spec)
        breakdown = EnergyBreakdown()
        # Weights read from on-chip RRAM storage each inference pass.
        breakdown.add("rram_access", weight_bytes * c.rram_storage_read_pj_per_byte)
        breakdown.add("sram_access", macs * c.sram_pj_per_byte)
        breakdown.add("mac_digital", macs * c.mac_int8_pj)
        return breakdown

    def end_to_end_energy(self, spec: ModelSpec, seq_len: int) -> EnergyBreakdown:
        c = self.costs
        breakdown = self.linear_layers_energy(spec, seq_len)
        attn_macs = self._attention_macs(spec, seq_len)
        kept = c.sprint_token_keep_ratio
        # In-memory MSB-4b pruning pass: one cheap analog scan over Q.K.
        breakdown.add("rram_access", 0.25 * attn_macs * c.rram_storage_read_pj_per_byte / 8)
        breakdown.add("mac_digital", kept * attn_macs * c.mac_int8_pj)
        breakdown.add("sram_access", kept * attn_macs * c.sram_pj_per_byte)
        softmax_elems = float(spec.num_heads * seq_len**2 * spec.num_layers) * kept
        breakdown.add("mac_digital", 5 * softmax_elems * c.mac_int8_pj)
        return breakdown

    def inference_time_s(self, spec: ModelSpec, seq_len: int, mode: str = "prefill") -> float:
        return self._streaming_time_s(
            spec,
            seq_len,
            mode,
            self.costs.rram_storage_bandwidth_gbps,
            keep_ratio=self.costs.sprint_token_keep_ratio,
        )
