"""Crossbar GEMV kernel benchmark: reference vs fast, tracked over PRs.

Times the bit-serial analog GEMV hot path under both kernels of
:mod:`repro.rram.kernels` across the batch / out-features / cell-type /
noise grid, cross-checking bitwise equivalence at every point, and
wall-clocks the Fig. 12 smoke sweep.  The payload is written to
``BENCH_kernels.json`` at the repo root — the perf-trajectory file CI
uploads as an artifact and gates on (fast must never be slower than
reference on the large-GEMV point).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exp import ExperimentSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def test_bench_kernels(benchmark, print_header, fresh_runner):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    params = {"reps": 1, "batches": (64,), "out_features": (256,)} if smoke else {}
    spec = ExperimentSpec("bench_kernels", params=params)

    result = benchmark.pedantic(
        lambda: fresh_runner.run(spec), rounds=1, iterations=1
    )
    value = result.value

    print_header("Kernel benchmark — reference vs fast bit-serial GEMV (µs/call)")
    print(f"{'cell':>5} {'noise':>10} {'batch':>5} {'out':>4} {'in':>4} "
          f"{'reference':>11} {'fast':>11} {'speedup':>8}")
    for row in value["grid"]:
        print(
            f"{row['cell']:>5} {row['noise']:>10} {row['batch']:>5} "
            f"{row['out_features']:>4} {row['in_features']:>4} "
            f"{row['reference_us']:>10.0f}µ {row['fast_us']:>10.0f}µ "
            f"{row['speedup']:>7.1f}x"
        )
    decode = value["batched_decode"]
    print_header(
        "Batched decode — fused plane-GEMM vs per-row dispatch (tokens/s)"
    )
    print(f"{'batch':>5} {'per-row':>9} {'fused':>9} {'speedup':>8}")
    for row in decode["grid"]:
        print(
            f"{row['batch']:>5} {row['per_row_tok_s']:>9.0f} "
            f"{row['fused_tok_s']:>9.0f} {row['speedup']:>7.1f}x"
        )
    sweep = " ".join(
        f"{p['ways']}-way={p['fused_tok_s']:.0f}" for p in decode["shard_sweep"]
    )
    print(f"shard sweep (fused, batch {decode['gate']['batch']}): {sweep} tok/s")

    if "fig12_smoke_wall_s" in value:
        print(f"\nfig12 --smoke end-to-end wall-clock: {value['fig12_smoke_wall_s']:.1f}s")

    if smoke:
        # Never clobber the committed full-grid trajectory with a smoke grid.
        print("smoke mode: skipping BENCH_kernels.json update")
    else:
        BENCH_PATH.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BENCH_PATH}")

    # Perf-trajectory gates (ISSUE 2 acceptance criteria).
    large_clean = value["large_noiseless"]
    large_noisy = value["large_noisy"]
    assert large_clean["speedup"] >= 5.0, large_clean
    assert large_noisy["speedup"] >= 2.0, large_noisy
    # Batched-decode gates (ISSUE 7): the fused plane-GEMM dispatch must
    # deliver >= 2x per-row tokens/s at batch 32 and scale superlinearly
    # with batch (fixed packing/dispatch overheads amortize).
    gate, batch1 = decode["gate"], decode["batch1"]
    assert gate["speedup"] >= 2.0, gate
    assert gate["fused_tok_s"] > batch1["fused_tok_s"], decode
