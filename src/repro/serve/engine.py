"""Batched serving engine over KV-cached decoder inference.

This is the ROADMAP's "serve heavy traffic" layer: a :class:`ServingEngine`
owns one PIM-deployed :class:`~repro.nn.transformer.DecoderLM` and turns a
stream of generation requests into dynamically-formed batches that decode
through the KV cache (O(L) per token — see :mod:`repro.nn.kv_cache`).

Hardware correspondence: the static Q/K/V/proj and FFN projections of the
served model run through analog SLC/MLC crossbars (``HybridLinear``), while
the cached K/V prefix plays the role of the paper's digital-PIM dynamic-GEMM
operands — written once per emitted token and reused every following step.
Activation quantization scales are *calibrated once at deploy time*
(:func:`repro.pim.calibrate_activations`) so served traffic never pays, nor
drifts with, per-call rescaling.

Design notes
------------
- Requests enter a FIFO queue via :meth:`ServingEngine.submit`; a batch is
  cut when ``max_batch_size`` requests are waiting, when the oldest request
  has waited ``max_wait_s``, or when the caller forces a drain.
- Prompts inside a batch may have different lengths: they are right-padded
  and decoded together via the ragged KV-cache path; each row stops at its
  own budget (or ``eos_id``).
- KV-cache buffers come from a :class:`~repro.serve.slots.CacheSlotPool`
  and are recycled across batches.
- The engine aggregates throughput/latency stats and the deployed layers'
  :class:`~repro.rram.crossbar.GemvStats`, so served traffic can feed the
  repo's energy/latency models exactly like the offline studies do.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import no_grad
from repro.nn.transformer import DecoderLM
from repro.pim.hybrid import HybridLinear, attach_hybrid_layers, calibrate_activations
from repro.rram.crossbar import GemvStats
from repro.serve.slots import CacheSlotPool

__all__ = ["GenerationRequest", "RequestResult", "ServingStats", "ServingEngine"]


@dataclass
class GenerationRequest:
    """One queued prompt awaiting generation."""

    request_id: int
    prompt: np.ndarray  # (L,) token ids
    max_new_tokens: int
    submitted_at: float

    @property
    def prompt_len(self) -> int:
        return int(self.prompt.shape[0])


@dataclass
class RequestResult:
    """A completed request: prompt + generated continuation + timing."""

    request_id: int
    prompt: np.ndarray
    tokens: np.ndarray  # generated continuation only
    queued_s: float  # submit -> batch start
    latency_s: float  # submit -> completion
    batch_size: int  # how many requests shared the batch

    @property
    def full_sequence(self) -> np.ndarray:
        return np.concatenate([self.prompt, self.tokens])


#: Rolling-window length for per-request/per-batch samples (latency
#: percentiles, batch-size mix).  Counters stay exact forever; only the
#: sample windows are bounded so a long-lived engine cannot grow without
#: bound.
STATS_WINDOW = 1024


@dataclass
class ServingStats:
    """Aggregate accounting across every batch the engine has run.

    Scalar counters (requests, tokens, wall-clock) are exact over the
    engine's lifetime; ``latencies_s`` / ``batch_sizes`` are rolling windows
    of the most recent ``STATS_WINDOW`` samples.
    """

    requests_completed: int = 0
    tokens_generated: int = 0
    batches: int = 0
    decode_wall_s: float = 0.0  # time spent inside model forwards
    latencies_s: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))
    batch_sizes: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))

    @property
    def tokens_per_s(self) -> float:
        return self.tokens_generated / self.decode_wall_s if self.decode_wall_s else 0.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(list(self.latencies_s))) if self.latencies_s else 0.0

    @property
    def p95_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(list(self.latencies_s), 95))

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(list(self.batch_sizes))) if self.batch_sizes else 0.0

    def as_dict(self) -> dict:
        return {
            "requests_completed": self.requests_completed,
            "tokens_generated": self.tokens_generated,
            "batches": self.batches,
            "decode_wall_s": round(self.decode_wall_s, 6),
            "tokens_per_s": round(self.tokens_per_s, 2),
            "mean_latency_s": round(self.mean_latency_s, 6),
            "p95_latency_s": round(self.p95_latency_s, 6),
            "mean_batch_size": round(self.mean_batch_size, 3),
        }


class ServingEngine:
    """Dynamic-batching front-end over one (PIM-deployed) decoder.

    Parameters
    ----------
    model:
        The decoder to serve — typically the output of
        :meth:`ServingEngine.deploy` (hybrid SLC/MLC layers attached), but
        any :class:`DecoderLM` works (useful for host-only baselines).
    max_batch_size:
        Upper bound on requests decoded together.
    max_wait_s:
        Dynamic-batching knob: a partial batch is cut once its oldest
        request has waited this long.  ``0`` serves whatever is queued
        immediately (latency-optimal); larger values trade queueing latency
        for fuller batches (throughput-optimal).
    cache_slots:
        Size of the KV-cache slot pool (free slots retained across batches).
    rng:
        Optional sampling Generator shared by all requests; None = greedy.
    eos_id / pad_id:
        Per-row stop token and padding filler for ragged batches.
    clock:
        Injectable time source (tests); defaults to ``time.perf_counter``.
    """

    def __init__(
        self,
        model: DecoderLM,
        max_batch_size: int = 8,
        max_wait_s: float = 0.0,
        cache_slots: int = 4,
        rng: np.random.Generator | None = None,
        eos_id: int | None = None,
        pad_id: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.model = model
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.rng = rng
        self.eos_id = eos_id
        self.pad_id = pad_id
        self.clock = clock
        self.slot_pool = CacheSlotPool(model, max_slots=cache_slots)
        self.stats = ServingStats()
        self._queue: list[GenerationRequest] = []
        # Completed-but-unclaimed results, bounded FIFO: oldest unclaimed
        # results are dropped once the buffer is full (dict preserves
        # insertion order), so a long-lived engine cannot leak memory when
        # callers never pop.
        self._completed: dict[int, RequestResult] = {}
        self.result_buffer = STATS_WINDOW
        self._next_id = 0
        self._hybrid_layers: dict[str, HybridLinear] = {}
        for name, module in model.named_modules():
            if isinstance(module, HybridLinear):
                self._hybrid_layers[name] = module

    # ------------------------------------------------------------------
    # Deployment helpers
    # ------------------------------------------------------------------
    @classmethod
    def deploy(
        cls,
        model: DecoderLM,
        plans: dict,
        calibration_prompts: np.ndarray | None = None,
        noise=None,
        mode: str = "fast",
        seed: int = 0,
        policy=None,
        **engine_kwargs,
    ) -> "ServingEngine":
        """Attach hybrid SLC/MLC layers to ``model`` and wrap it in an engine.

        ``plans`` is the gradient-redistribution output (name -> LayerPlan).
        ``calibration_prompts`` (B, L) are pushed through the deployed model
        once to freeze activation quantization scales (meaningful for
        ``mode="crossbar"``; a no-op for the fast Eq. 5 path, which does not
        quantize activations).
        """
        import copy

        deployed = copy.deepcopy(model)
        attached = attach_hybrid_layers(
            deployed, plans, noise=noise, mode=mode, seed=seed, policy=policy
        )
        if calibration_prompts is not None and mode == "crossbar":
            prompts = np.atleast_2d(np.asarray(calibration_prompts))
            # Serving always decodes in eval mode (generate() enforces it);
            # calibration must observe the same dropout-free activations.
            deployed.eval()

            def run_calibration() -> None:
                with no_grad():  # inference-only: skip autograd bookkeeping
                    deployed(prompts)

            calibrate_activations(attached, run_calibration)
            # Served-traffic accounting starts from zero: the calibration
            # forward must not inflate gemv_stats()' energy inputs.
            for layer in attached.values():
                layer.reset_stats()
        return cls(deployed, **engine_kwargs)

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(self, prompt: np.ndarray, max_new_tokens: int) -> int:
        """Enqueue one prompt; returns its request id."""
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        capacity = self.model.config.max_seq_len
        if prompt.size + max_new_tokens > capacity:
            raise ValueError(
                f"request needs {prompt.size + max_new_tokens} positions, "
                f"model max_seq_len is {capacity}"
            )
        request = GenerationRequest(
            request_id=self._next_id,
            prompt=prompt,
            max_new_tokens=int(max_new_tokens),
            submitted_at=self.clock(),
        )
        self._next_id += 1
        self._queue.append(request)
        return request.request_id

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _batch_ready(self) -> bool:
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch_size:
            return True
        return (self.clock() - self._queue[0].submitted_at) >= self.max_wait_s

    def _cut_batch(self) -> list[GenerationRequest]:
        """Take a FIFO prefix of the queue that fits one KV-cache geometry.

        A batch decodes over ``max(prompt_len) + max(budget)`` positions, so
        two individually-valid requests (long prompt + short budget, short
        prompt + long budget) can jointly exceed ``max_seq_len``.  The cut
        stops *before* the first request that would overflow the joint
        geometry — it simply starts the next batch — preserving FIFO order.
        """
        capacity = self.model.config.max_seq_len
        batch: list[GenerationRequest] = []
        width = budget = 0
        for request in self._queue:
            if len(batch) >= self.max_batch_size:
                break
            new_width = max(width, request.prompt_len)
            new_budget = max(budget, request.max_new_tokens)
            if batch and new_width + new_budget > capacity:
                break
            batch.append(request)
            width, budget = new_width, new_budget
        return batch

    def step(self, force: bool = False) -> list[RequestResult]:
        """Cut and run one batch if the batching policy says it is ready.

        ``force`` drains a partial batch regardless of ``max_wait_s`` (used
        by :meth:`run_until_idle`).  Returns [] when nothing ran.  Results
        are also retained for :meth:`pop_result` until popped.
        """
        if not self._queue or not (force or self._batch_ready()):
            return []
        batch = self._cut_batch()
        del self._queue[: len(batch)]
        results = self._run_batch(batch)
        for result in results:
            self._completed[result.request_id] = result
        while len(self._completed) > self.result_buffer:
            self._completed.pop(next(iter(self._completed)))
        return results

    def pop_result(self, request_id: int) -> RequestResult | None:
        """Claim (and forget) a completed request's result, if any."""
        return self._completed.pop(request_id, None)

    def run_until_idle(self) -> list[RequestResult]:
        """Drain the queue completely; returns results in completion order.

        Returned results stay claimable via :meth:`pop_result` too, so a
        caller draining on behalf of earlier ``submit()`` callers does not
        destroy their results.
        """
        results: list[RequestResult] = []
        while self._queue:
            results.extend(self.step(force=True))
        return results

    def serve(
        self, prompts: Sequence[np.ndarray], max_new_tokens: int
    ) -> list[RequestResult]:
        """Convenience: submit ``prompts`` and drain; results in submit order.

        Any previously queued requests are decoded along the way; their
        results remain claimable via :meth:`pop_result`.
        """
        ids = [self.submit(p, max_new_tokens) for p in prompts]
        wanted = set(ids)
        collected: dict[int, RequestResult] = {}
        while self._queue:
            for result in self.step(force=True):
                if result.request_id in wanted:
                    # Claim eagerly: collecting from step()'s return keeps
                    # serve() immune to result-buffer eviction on huge runs.
                    collected[result.request_id] = result
                    self._completed.pop(result.request_id, None)
        return [collected[i] for i in ids]

    # ------------------------------------------------------------------
    def _run_batch(self, batch: list[GenerationRequest]) -> list[RequestResult]:
        started = self.clock()
        prompt_lens = np.array([r.prompt_len for r in batch], dtype=np.int64)
        budgets = np.array([r.max_new_tokens for r in batch], dtype=np.int64)
        width = int(prompt_lens.max())
        prompts = np.full((len(batch), width), self.pad_id, dtype=np.int64)
        for i, request in enumerate(batch):
            prompts[i, : request.prompt_len] = request.prompt

        cache = self.slot_pool.acquire(len(batch))
        try:
            # Per-row budgets: a short-budget row stops decoding once its own
            # budget is spent instead of riding along to the batch maximum.
            out = self.model.generate(
                prompts,
                max_new_tokens=budgets,
                rng=self.rng,
                prompt_lengths=prompt_lens,
                use_cache=True,
                cache=cache,
                eos_id=self.eos_id,
                pad_id=self.pad_id,
            )
        finally:
            self.slot_pool.release(cache)
        finished = self.clock()

        results = []
        for i, request in enumerate(batch):
            generated = out[i, prompt_lens[i] : prompt_lens[i] + budgets[i]]
            if self.eos_id is not None:
                hits = np.nonzero(generated == self.eos_id)[0]
                if hits.size:
                    generated = generated[: hits[0] + 1]
            results.append(
                RequestResult(
                    request_id=request.request_id,
                    prompt=request.prompt,
                    tokens=np.asarray(generated),
                    queued_s=started - request.submitted_at,
                    latency_s=finished - request.submitted_at,
                    batch_size=len(batch),
                )
            )
        self._record(results, finished - started)
        return results

    def _record(self, results: list[RequestResult], wall_s: float) -> None:
        self.stats.batches += 1
        self.stats.decode_wall_s += wall_s
        self.stats.batch_sizes.append(len(results))
        for result in results:
            self.stats.requests_completed += 1
            self.stats.tokens_generated += int(result.tokens.size)
            self.stats.latencies_s.append(result.latency_s)

    # ------------------------------------------------------------------
    # Hardware accounting
    # ------------------------------------------------------------------
    def gemv_stats(self) -> GemvStats:
        """Merged crossbar operation counts across all deployed layers.

        Crossbar-mode deployments accumulate ADC conversions, wordline
        activations etc. for every served token; feed this to the
        :mod:`repro.arch` energy/latency models to cost served traffic.
        (Fast-mode layers perform no bit-serial simulation, so their stats
        stay zero.)
        """
        total = GemvStats()
        for layer in self._hybrid_layers.values():
            total.merge(layer.merged_stats())
        return total

    @property
    def hybrid_layers(self) -> dict[str, HybridLinear]:
        return dict(self._hybrid_layers)

    def is_pim_deployed(self) -> bool:
        return bool(self._hybrid_layers)
