"""GLUE-style protection-rate study across tasks and selection policies.

Reproduces the *shape* of Fig. 12(a) (accuracy vs SLC rate per task) and
Fig. 13 (gradient- vs rank-based selection) on synthetic GLUE stand-ins.

Run:  python examples/glue_protection_sweep.py [task ...]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import HyFlexPim
from repro.datasets import GLUE_TASKS, make_glue_task
from repro.nn import AdamW, BatchIterator, EncoderClassifier, TransformerConfig, cross_entropy

RATES = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)


def run_task(name: str) -> None:
    data = make_glue_task(name, seed=0)
    metric = {"matthews": "matthews"}.get(data.spec.metric, "accuracy")
    if data.spec.kind == "regression":
        print(f"-- {name}: regression tasks are exercised in Fig. 12 bench --")
        return
    config = TransformerConfig(
        vocab_size=data.spec.vocab_size,
        d_model=32,
        num_heads=4,
        num_layers=2,
        d_ff=64,
        max_seq_len=data.spec.seq_len,
        num_classes=2,
        seed=0,
    )
    model = EncoderClassifier(config)
    optimizer = AdamW(model.parameters(), lr=2e-3)
    rng = np.random.default_rng(0)
    for _ in range(4):
        for inputs, targets in BatchIterator(data.train, 32, rng=rng):
            loss = cross_entropy(model(inputs), targets.astype(int))
            model.zero_grad()
            loss.backward()
            optimizer.step()

    hfp = HyFlexPim(protect_fraction=0.1, epochs=2, batch_size=32, learning_rate=2e-3)
    compiled = hfp.compile(model, data.train, task_type="classification")
    baseline = hfp.ideal_reference(compiled, data.test, metric=metric)

    print(f"-- {name} ({data.spec.metric}) | noise-free INT8 baseline: {baseline:.3f}")
    for policy in ("gradient", "rank"):
        sweep = hfp.protection_sweep(
            compiled, data.test, rates=RATES, metric=metric, policy=policy
        )
        series = "  ".join(f"{r * 100:4.0f}%:{v:.3f}" for r, v in sweep.items())
        print(f"   {policy:>8}-based  {series}")


def main() -> None:
    tasks = sys.argv[1:] or ["sst2", "mrpc", "rte"]
    unknown = [t for t in tasks if t not in GLUE_TASKS]
    if unknown:
        raise SystemExit(f"unknown tasks {unknown}; options: {sorted(GLUE_TASKS)}")
    print("== GLUE protection sweep (mini Fig. 12a / Fig. 13) ==")
    for task in tasks:
        run_task(task)


if __name__ == "__main__":
    main()
