"""Bit-serial analog crossbar GEMV (Figs. 3, 6, 7).

Implements the paper's analog PIM dataflow faithfully:

- signed INT8 weights are *offset-encoded* to [0, 255] (conductances cannot
  be negative) and **bit-sliced across adjacent columns** — eight 1-bit
  columns per weight for SLC, four 2-bit cells for MLC (Figs. 6-7);
- each programmed cell carries multiplicative Gaussian programming noise
  calibrated to measured BER (Section 5.2);
- inputs stream **bit-serially** over the wordlines, one bit-plane per
  cycle; the two's-complement MSB cycle gets a negative weight in the
  digital shift-and-add, and the weight offset is removed digitally by
  subtracting ``offset x Σ(inputs)``;
- every bitline sum passes through the shared SAR ADC (6 b SLC / 7 b MLC);
- matrices larger than one 64x128 array tile across arrays, with partial
  sums accumulated digitally (Section 3.1).

In the noiseless case the pipeline is *exact*: it returns the integer GEMV
``x @ W.T`` (verified by tests), because the unit-step ADC only errs when a
bitline saturates.  The fast kernel in :mod:`repro.rram.kernels` exploits
exactly this property: when a matrix is noiseless and no bitline can reach
the ADC full-scale code it short-circuits the whole bit-serial pipeline to
one dense matmul (with identical outputs and statistics); the einsum
formulation survives as the ``reference`` kernel both are tested against.
Which kernel runs is governed by :class:`~repro.rram.kernels.KernelPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quant.quantizer import int_to_bits
from repro.rram.adc import SarAdc, required_adc_bits
from repro.rram.backend import CrossbarBackend, resolve_backend
from repro.rram.cell import CellType
from repro.rram.kernels import KernelPolicy, resolve_policy, run_gemv

__all__ = [
    "CrossbarConfig",
    "WeightSlices",
    "slice_weights",
    "input_bit_weights",
    "bit_serial_gemv",
    "ProgrammedMatrix",
    "GemvStats",
]


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry of one analog RRAM array (Fig. 5(c): 64 WLs x 128 BLs)."""

    rows: int = 64
    cols: int = 128

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("rows and cols must be positive")


@dataclass
class WeightSlices:
    """Bit-sliced, offset-encoded weight planes ready for programming.

    ``values`` has shape (in_features, out_features, num_slices) with entries
    in ``[0, 2^cell_bits - 1]``; slice ``s`` carries bit positions
    ``[s*cell_bits, (s+1)*cell_bits)`` of the offset-encoded weight, so its
    shift-and-add impact factor is ``2^(s*cell_bits)`` (1x, 4x, 16x... for
    2-bit MLC, exactly as in Fig. 7).
    """

    values: np.ndarray
    cell: CellType
    weight_bits: int
    offset: int

    @property
    def num_slices(self) -> int:
        """Bit slices (physical columns) each weight occupies."""
        return self.values.shape[-1]

    @property
    def slice_factors(self) -> np.ndarray:
        """Per-slice place values for digital shift-and-add recombination."""
        return (2 ** (self.cell.bits * np.arange(self.num_slices))).astype(np.int64)

    def columns_per_weight(self) -> int:
        """Physical crossbar columns consumed per logical weight."""
        return self.num_slices


def slice_weights(
    weight_codes: np.ndarray, cell: CellType, weight_bits: int = 8
) -> WeightSlices:
    """Offset-encode signed weight codes and split them into cell slices.

    ``weight_codes`` is (out_features, in_features), signed integers in
    ``[-2^(bits-1), 2^(bits-1) - 1]``.
    """
    weight_codes = np.asarray(weight_codes)
    if weight_codes.ndim != 2:
        raise ValueError(f"expected 2-D weights, got shape {weight_codes.shape}")
    offset = 2 ** (weight_bits - 1)
    unsigned = weight_codes.astype(np.int64) + offset
    if unsigned.min(initial=0) < 0 or unsigned.max(initial=0) >= 2**weight_bits:
        raise ValueError(f"weight codes exceed the signed {weight_bits}-bit range")
    bits = int_to_bits(unsigned.T, weight_bits)  # (in, out, weight_bits)
    num_slices = -(-weight_bits // cell.bits)
    padded = weight_bits % cell.bits
    if padded:
        pad = np.zeros(bits.shape[:-1] + (cell.bits - padded,), dtype=bits.dtype)
        bits = np.concatenate([bits, pad], axis=-1)
    grouped = bits.reshape(bits.shape[0], bits.shape[1], num_slices, cell.bits)
    bit_weights = 1 << np.arange(cell.bits)
    values = (grouped * bit_weights).sum(axis=-1)
    cell.validate_levels(values)
    return WeightSlices(values=values, cell=cell, weight_bits=weight_bits, offset=offset)


def input_bit_weights(input_bits: int) -> np.ndarray:
    """Shift-and-add weights per input bit-plane (two's complement).

    LSB-first: ``[1, 2, 4, ..., -2^(n-1)]`` — the MSB plane carries the
    negative two's-complement weight, applied digitally.
    """
    weights = (1 << np.arange(input_bits)).astype(np.int64)
    weights[-1] = -weights[-1]
    return weights


@dataclass
class GemvStats:
    """Operation counts collected during a crossbar GEMV (for energy hooks).

    All fields are monotone counters; ``merge`` adds another instance in,
    so per-shard / per-layer stats aggregate without double counting.

    Write-side counters are symmetric: ``cells_initial_programmed`` counts
    cells written for the *first* time after deployment (a dynamic
    operand's fresh row appends, a mapped matrix's construction-time
    program), while ``cells_reprogrammed`` counts cells *re*-written over
    previously-programmed state (online recalibration, a dynamic operand
    overwriting recycled rows).  ``cells_programmed`` is the read-side
    occupancy counter — cells *touched* per GEMV — and is unrelated to
    write events.
    """

    adc_conversions: int = 0
    wordline_activations: int = 0
    array_tiles: int = 0
    cells_programmed: int = 0
    saturated_conversions: int = 0
    input_cycles: int = 0
    cells_initial_programmed: int = 0
    cells_reprogrammed: int = 0
    #: Dispatch-shape counters (``compare=False``): how the work reached the
    #: arrays, not what the arrays did — per-row and fused dispatch of the
    #: same workload agree on every hardware counter above while legitimately
    #: differing here, so equality checks ignore them.
    planes_packed: int = field(default=0, compare=False)
    pack_reuses: int = field(default=0, compare=False)
    fused_rows: int = field(default=0, compare=False)
    zero_planes_skipped: int = field(default=0, compare=False)

    def merge(self, other: "GemvStats") -> None:
        """Accumulate ``other``'s counters into this instance (in place)."""
        self.adc_conversions += other.adc_conversions
        self.wordline_activations += other.wordline_activations
        self.array_tiles += other.array_tiles
        self.cells_programmed += other.cells_programmed
        self.saturated_conversions += other.saturated_conversions
        self.input_cycles += other.input_cycles
        self.cells_initial_programmed += other.cells_initial_programmed
        self.cells_reprogrammed += other.cells_reprogrammed
        self.planes_packed += other.planes_packed
        self.pack_reuses += other.pack_reuses
        self.fused_rows += other.fused_rows
        self.zero_planes_skipped += other.zero_planes_skipped


class ProgrammedMatrix:
    """A weight matrix programmed into crossbar cells via a backend.

    Static weights are written a single time before inference (Section 3.2);
    on the default :class:`~repro.rram.backend.SimBackend` the programming
    noise is *frozen* at construction and every subsequent GEMV reads the
    same perturbed conductances.  Fault-injecting backends may evolve the
    effective conductances across their ``advance()`` clock epochs, and
    :meth:`reprogram` re-writes the cells (the recovery action online
    recalibration takes against drifted or worn tiles).
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        cell: CellType,
        noise_sigma: float = 0.0,
        rng: np.random.Generator | None = None,
        config: CrossbarConfig | None = None,
        weight_bits: int = 8,
        adc: SarAdc | None = None,
        policy: KernelPolicy | None = None,
        backend: CrossbarBackend | None = None,
    ) -> None:
        """Slice, offset-encode and program ``weight_codes`` onto ``backend``.

        ``weight_codes`` is ``(out_features, in_features)`` signed ints in
        the ``weight_bits`` range; ``noise_sigma`` the calibrated Eq. (5)
        programming σ; ``rng`` the programming-noise generator (default:
        seed 0); ``backend`` defaults to the process-wide backend
        (:func:`~repro.rram.backend.get_default_backend`).
        """
        rng = rng or np.random.default_rng(0)
        self.config = config or CrossbarConfig()
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        self.out_features, self.in_features = weight_codes.shape
        self.cell = cell
        self.policy = policy
        self.noise_sigma = float(noise_sigma)
        self.slices = slice_weights(weight_codes, cell, weight_bits)
        self.backend = resolve_backend(backend)
        self._tile = self.backend.program(
            self.slices.values,
            cell,
            self.noise_sigma,
            rng,
            resolve_policy(policy).storage_dtype,
        )
        self.adc = adc or SarAdc(bits=required_adc_bits(self.config.rows, cell.bits))
        self._saturation_free: bool | None = None
        self._dense_weights_t: np.ndarray | None = None
        self._stacked_planes: np.ndarray | None = None
        self._stacked_epoch: int = -1

    # -- programmed-cell views (consumed by repro.rram.kernels) ---------------
    @property
    def is_noiseless(self) -> bool:
        """True when reads return the exact integer slice levels.

        Licenses the fast kernel's one-matmul shortcut, so the owning
        backend must only claim it when no mechanism can perturb a read.
        """
        return self.backend.is_ideal(self._tile)

    @property
    def planes(self) -> np.ndarray:
        """Effective programmed cell levels, shape (in, out, n_slices).

        Integer slice levels when noiseless, floats (in the policy's
        storage dtype) otherwise.  Read through the backend, so fault
        backends may return different planes after ``advance()``.
        """
        return self.backend.planes(self._tile)

    def reprogram(self, stats: GemvStats | None = None) -> None:
        """Re-write the cells through the backend (fresh noise realization).

        Records the write traffic in the backend's wear ledger and, when
        ``stats`` is given, in ``stats.cells_reprogrammed`` — so online
        recalibration's re-program cost shows up next to GEMV counters.
        """
        self.backend.reprogram(self._tile)
        if stats is not None:
            stats.cells_reprogrammed += self._tile.num_cells

    @property
    def programmed(self) -> np.ndarray:
        """Back-compat float view of :attr:`planes`."""
        return np.asarray(self.planes, dtype=np.float64)

    @property
    def saturation_free(self) -> bool:
        """True when no bitline of any row tile can reach the ADC full scale.

        Checked against the worst case (every wordline bit set): if even the
        largest possible per-column level sum stays *strictly below* the
        full-scale code, no conversion can clip or report saturation for any
        input, which licenses the fast kernel's exact noiseless shortcut.
        Computed once per programmed matrix and cached.
        """
        if self._saturation_free is None:
            worst = 0
            rows = self.config.rows
            values = self.slices.values
            for row_start in range(0, self.in_features, rows):
                tile = values[row_start : row_start + rows]
                worst = max(worst, int(tile.sum(axis=0).max()))
            self._saturation_free = worst < self.adc.full_scale
        return self._saturation_free

    def stacked_planes(self) -> np.ndarray:
        """Row tiles stacked for fused GEMM: ``(num_tiles, rows, out*n_s)``.

        Float64 (exact widening of the storage dtype), with the trailing
        partial tile zero-padded to a full ``rows`` wordlines — padded rows
        meet only padded zero input bits in the fused operand, so every
        analog sum matches the per-tile slicing of ``fast_gemv`` bitwise.
        Cached against the backend's ``epoch`` so fault backends that
        evolve conductances (``advance()``/``reprogram()``) invalidate the
        stack automatically.
        """
        epoch = self.backend.epoch
        if self._stacked_planes is None or self._stacked_epoch != epoch:
            rows = self.config.rows
            num_tiles = -(-self.in_features // rows)
            out_cols = self.out_features * self.slices.num_slices
            flat = self.planes.reshape(self.in_features, out_cols)
            stacked = np.zeros((num_tiles * rows, out_cols), dtype=np.float64)
            stacked[: self.in_features] = flat
            self._stacked_planes = np.ascontiguousarray(
                stacked.reshape(num_tiles, rows, out_cols)
            )
            self._stacked_epoch = epoch
        return self._stacked_planes

    @property
    def dense_weights_t(self) -> np.ndarray:
        """``W.T`` as float64, recombined from the integer slices (lazy).

        Only materialized by the fast kernel's noiseless shortcut; it is
        ``num_slices`` times smaller than the slice planes.
        """
        if self._dense_weights_t is None:
            recombined = (
                self.slices.values.astype(np.float64) @ self.slices.slice_factors.astype(np.float64)
            )
            self._dense_weights_t = recombined - self.slices.offset
        return self._dense_weights_t

    def gemv(
        self,
        input_codes: np.ndarray,
        input_bits: int = 8,
        stats: GemvStats | None = None,
        policy: KernelPolicy | None = None,
    ) -> np.ndarray:
        """Bit-serial ``x @ W.T`` against the programmed cells (signed ints).

        ``policy`` overrides the matrix-level policy for this call; both fall
        back to the process-wide default (:mod:`repro.rram.kernels`).
        """
        input_codes = np.atleast_2d(np.asarray(input_codes, dtype=np.int64))
        _, in_features = input_codes.shape
        if in_features != self.in_features:
            raise ValueError(
                f"shape mismatch: inputs {input_codes.shape}, "
                f"weights ({self.out_features}, {self.in_features})"
            )
        offset_inputs = input_codes + 2 ** (input_bits - 1)
        if offset_inputs.min() < 0 or offset_inputs.max() >= 2**input_bits:
            raise ValueError(f"input codes exceed the signed {input_bits}-bit range")
        return run_gemv(
            self,
            input_codes,
            input_bits,
            stats=stats,
            policy=policy if policy is not None else self.policy,
        )


def bit_serial_gemv(
    input_codes: np.ndarray,
    weight_codes: np.ndarray,
    cell: CellType,
    noise_sigma: float = 0.0,
    rng: np.random.Generator | None = None,
    config: CrossbarConfig | None = None,
    input_bits: int = 8,
    weight_bits: int = 8,
    adc: SarAdc | None = None,
    stats: GemvStats | None = None,
    policy: KernelPolicy | None = None,
    backend: CrossbarBackend | None = None,
) -> np.ndarray:
    """One-shot program + GEMV convenience wrapper around ProgrammedMatrix."""
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    if weight_codes.ndim != 2:
        raise ValueError(f"expected 2-D weights, got shape {weight_codes.shape}")
    matrix = ProgrammedMatrix(
        weight_codes,
        cell,
        noise_sigma=noise_sigma,
        rng=rng,
        config=config,
        weight_bits=weight_bits,
        adc=adc,
        policy=policy,
        backend=backend,
    )
    return matrix.gemv(input_codes, input_bits=input_bits, stats=stats)
