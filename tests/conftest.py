"""Shared fixtures for the HyFlexPIM reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=float)
    flat = grad.reshape(-1)
    x_flat = x.reshape(-1)
    for i in range(x_flat.size):
        original = x_flat[i]
        x_flat[i] = original + eps
        f_plus = f(x)
        x_flat[i] = original - eps
        f_minus = f(x)
        x_flat[i] = original
        flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


@pytest.fixture
def grad_checker():
    """Expose the numerical gradient helper to tests."""
    return numerical_gradient
