"""Request/result types shared by the serving schedulers.

Kept in their own module so both :mod:`repro.serve.engine` (queueing,
stats) and :mod:`repro.serve.continuous` (iteration-level scheduling) can
use them without a circular import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["GenerationRequest", "RequestResult", "TokenCallback"]

#: Streaming callback signature: ``(request_id, token)`` per emitted token.
TokenCallback = Callable[[int, int], None]


@dataclass
class GenerationRequest:
    """One queued prompt awaiting generation.

    ``submitted_at`` comes from the engine's injectable clock (never
    ``time.time()`` directly), so scheduler tests are fully deterministic.
    ``on_token`` is an optional streaming callback: the continuous
    scheduler fires it the moment each token is emitted; the static
    scheduler fires it for every token once the request's batch completes
    (a static batch cannot stream mid-flight).
    """

    request_id: int
    prompt: np.ndarray  # (L,) token ids
    max_new_tokens: int
    submitted_at: float
    on_token: TokenCallback | None = field(default=None, repr=False)

    @property
    def prompt_len(self) -> int:
        """Number of prompt tokens."""
        return int(self.prompt.shape[0])

    @property
    def token_need(self) -> int:
        """KV positions this request reserves (prompt + full budget)."""
        return self.prompt_len + self.max_new_tokens


@dataclass
class RequestResult:
    """A completed request: prompt + generated continuation + timing.

    Latency definitions (all measured on the engine's injectable clock):

    ``ttft_s``
        Time to first token — submit until the first generated token was
        available to the caller.  Under continuous scheduling that is the
        moment the token was emitted; under static scheduling results only
        materialize when the whole batch finishes, so TTFT equals
        ``latency_s``.
    ``tpot_s``
        Time per output token after the first — ``(completion - first
        token) / (n - 1)`` under continuous scheduling (0 for single-token
        results); batch wall-clock per emitted token under static
        scheduling.
    ``projected_latency_s``
        Hardware-projected end-to-end latency on the deployed mesh
        (``None`` unless the engine carries a
        :class:`~repro.dist.ShardPlan`): serial pipeline fill for the
        first position plus every remaining prompt/generated position at
        the plan's steady-state rate, interconnect costs (OCI partial-sum
        aggregation, PCIe-6.0 pipeline handoffs) included — see
        :meth:`repro.dist.HardwareProjection.request_latency_s`.
    """

    request_id: int
    prompt: np.ndarray
    tokens: np.ndarray  # generated continuation only
    queued_s: float  # submit -> admission (batch start / row checkout)
    latency_s: float  # submit -> completion
    batch_size: int  # concurrently-decoding requests when this one finished
    ttft_s: float = 0.0
    tpot_s: float = 0.0
    projected_latency_s: float | None = None

    @property
    def full_sequence(self) -> np.ndarray:
        """Prompt and generated tokens as one contiguous sequence."""
        return np.concatenate([self.prompt, self.tokens])
