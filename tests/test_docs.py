"""Docs stay wired: relative links resolve, trajectories exist.

Runs ``tools/check_docs.py`` in-process so the tier-1 suite catches a
broken README/docs link or a citation of a BENCH_*.json trajectory the
repo does not track — the same check the CI ``docs`` job runs.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist():
    for name in ("ARCHITECTURE.md", "SERVING.md", "BENCHMARKS.md"):
        assert (REPO_ROOT / "docs" / name).exists(), name


def test_readme_links_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for name in ("ARCHITECTURE.md", "SERVING.md", "BENCHMARKS.md"):
        assert f"docs/{name}" in readme, name


def test_all_relative_links_and_trajectories_resolve():
    checker = _load_checker()
    problems = [p for f in checker.doc_files() for p in checker.check_file(f)]
    assert problems == []


def test_checker_flags_broken_references(tmp_path):
    checker = _load_checker()
    checker.REPO_ROOT = tmp_path  # scope the checker to a sandbox repo
    bad = tmp_path / "bad.md"
    bad.write_text(
        "[x](missing.md) cites BENCH_not_tracked.json\n[y](other.md#nope)\n"
    )
    (tmp_path / "other.md").write_text("# Hello\n")
    problems = checker.check_file(bad)
    assert any("broken link -> missing.md" in p for p in problems)
    assert any("missing anchor -> other.md#nope" in p for p in problems)
    assert any("BENCH_not_tracked.json" in p for p in problems)
    good = tmp_path / "good.md"
    good.write_text("[y](other.md#hello) and [web](https://example.com)\n")
    assert checker.check_file(good) == []
