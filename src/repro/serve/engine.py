"""Batched serving engine over KV-cached decoder inference.

This is the ROADMAP's "serve heavy traffic" layer: a :class:`ServingEngine`
owns one PIM-deployed :class:`~repro.nn.transformer.DecoderLM` and turns a
stream of generation requests into decode batches through the KV cache
(O(L) per token — see :mod:`repro.nn.kv_cache`), under one of two
scheduling policies:

``continuous`` (default)
    Iteration-level batching (:class:`~repro.serve.continuous.ContinuousScheduler`):
    the in-flight batch grows and shrinks token-by-token — new requests
    join mid-flight with a prefill into a free cache row, finished rows
    retire and are compacted immediately.  One long generation no longer
    stalls short requests queued behind it.

``static``
    The historical all-or-nothing path: a batch is cut from the queue,
    decoded to completion via one ``DecoderLM.generate`` call, and only
    then is the queue consulted again.  Kept as a policy option (and as
    the baseline the serving benchmark measures continuous batching
    against).

Hardware correspondence: the static Q/K/V/proj and FFN projections of the
served model run through analog SLC/MLC crossbars (``HybridLinear``), while
the cached K/V prefix plays the role of the paper's digital-PIM dynamic-GEMM
operands — written once per emitted token and reused every following step.
Because the hybrid SLC/MLC mapping is deployed once, admitting a request
mid-flight costs only a prefill — never a crossbar reprogram.  Activation
quantization scales are *calibrated once at deploy time*
(:func:`repro.pim.calibrate_activations`) so served traffic never pays, nor
drifts with, per-call rescaling.

Design notes
------------
- Requests enter a FIFO queue via :meth:`ServingEngine.submit`; work starts
  when ``max_batch_size`` requests are waiting, when the oldest request has
  waited ``max_wait_s``, or when the caller forces a drain.  Under the
  continuous policy, once rows are live any queued request is admitted the
  moment a row frees up (subject to the optional ``max_tokens`` budget).
- Prompts of different lengths decode together via the ragged KV-cache
  path; each request stops at its own budget (or ``eos_id``).
- KV-cache buffers come from a :class:`~repro.serve.slots.CacheSlotPool`
  and are recycled across batches / busy periods.
- All timing — including ``GenerationRequest.submitted_at`` and every
  TTFT/TPOT sample — goes through the injectable ``clock``, so scheduler
  tests are fully deterministic.
- The engine aggregates throughput/latency/TTFT/TPOT stats and the
  deployed layers' :class:`~repro.rram.crossbar.GemvStats`, so served
  traffic can feed the repo's energy/latency models exactly like the
  offline studies do.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import no_grad
from repro.nn.transformer import DecoderLM
from repro.pim.hybrid import HybridLinear, attach_hybrid_layers, calibrate_activations
from repro.rram.crossbar import GemvStats
from repro.serve.continuous import ContinuousScheduler
from repro.serve.requests import GenerationRequest, RequestResult, TokenCallback
from repro.serve.slots import CacheSlotPool

__all__ = [
    "GenerationRequest",
    "RecalibrationPolicy",
    "RequestResult",
    "ServingStats",
    "ServingEngine",
    "SCHEDULERS",
]

#: Valid scheduling policies for :class:`ServingEngine`.
SCHEDULERS = ("continuous", "static")

#: Rolling-window length for per-request/per-batch samples (latency
#: percentiles, TTFT/TPOT, batch-size mix).  Counters stay exact forever;
#: only the sample windows are bounded so a long-lived engine cannot grow
#: without bound.
STATS_WINDOW = 1024


def _window_mean(samples: deque) -> float:
    return float(np.mean(list(samples))) if samples else 0.0


def _window_p95(samples: deque) -> float:
    return float(np.percentile(list(samples), 95)) if samples else 0.0


@dataclass
class ServingStats:
    """Aggregate accounting across everything the engine has decoded.

    Scalar counters (requests, tokens, wall-clock, batches/iterations) are
    exact over the engine's lifetime; the ``*_s`` / ``batch_sizes`` deques
    are rolling windows of the most recent ``STATS_WINDOW`` samples.
    ``batches`` counts static batch runs; ``iterations`` counts continuous
    scheduler steps.  TTFT/TPOT definitions are documented on
    :class:`~repro.serve.requests.RequestResult`.
    """

    requests_completed: int = 0
    tokens_generated: int = 0
    batches: int = 0
    iterations: int = 0
    #: Online-recalibration accounting: drift probes issued, recovery
    #: actions taken, and layers re-programmed by those recoveries.
    drift_probes: int = 0
    recalibrations: int = 0
    layers_reprogrammed: int = 0
    #: Requests cut short by their SLO deadline (queued expiry or decode
    #: preemption) — see :class:`~repro.serve.requests.GenerationRequest`.
    preempted: int = 0
    #: Batched-decode fast-path accounting (continuous scheduler): activation
    #: bit-planes packed fresh vs. served from the step's PlaneCache, and
    #: rows dispatched through the fused ``fast_gemm`` kernel.
    planes_packed: int = 0
    pack_reuses: int = 0
    fused_rows: int = 0
    decode_wall_s: float = 0.0  # time spent inside model forwards
    #: Hardware-projected pipeline occupancy (sum of per-request shares on
    #: the deployed mesh); 0 when the engine carries no shard plan.
    projected_busy_s: float = 0.0
    latencies_s: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))
    ttfts_s: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))
    tpots_s: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))
    batch_sizes: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))
    #: Latency-split windows: admission wait (``RequestResult.queued_s``)
    #: and engine-side time-to-first-token (``service_ttft_s`` — TTFT with
    #: the admission wait subtracted), so an overloaded queue cannot
    #: masquerade as slow prefill.
    queued_s: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))
    service_ttfts_s: deque = field(default_factory=lambda: deque(maxlen=STATS_WINDOW))

    @property
    def tokens_per_s(self) -> float:
        """Generated tokens per second of decode wall-clock."""
        return self.tokens_generated / self.decode_wall_s if self.decode_wall_s else 0.0

    @property
    def projected_tokens_per_s(self) -> float:
        """Generated tokens over hardware-projected busy time (steady state)."""
        return (
            self.tokens_generated / self.projected_busy_s if self.projected_busy_s else 0.0
        )

    @property
    def mean_latency_s(self) -> float:
        """Mean request latency over the sliding stats window."""
        return _window_mean(self.latencies_s)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile request latency over the sliding window."""
        return _window_p95(self.latencies_s)

    @property
    def mean_ttft_s(self) -> float:
        """Mean time-to-first-token over the sliding window."""
        return _window_mean(self.ttfts_s)

    @property
    def p95_ttft_s(self) -> float:
        """95th-percentile time-to-first-token over the sliding window."""
        return _window_p95(self.ttfts_s)

    @property
    def mean_tpot_s(self) -> float:
        """Mean time-per-output-token over the sliding window."""
        return _window_mean(self.tpots_s)

    @property
    def mean_queued_s(self) -> float:
        """Mean admission wait (queueing delay) over the sliding window."""
        return _window_mean(self.queued_s)

    @property
    def p95_queued_s(self) -> float:
        """95th-percentile admission wait over the sliding window."""
        return _window_p95(self.queued_s)

    @property
    def mean_service_ttft_s(self) -> float:
        """Mean engine-side TTFT (admission wait excluded) over the window."""
        return _window_mean(self.service_ttfts_s)

    @property
    def p95_service_ttft_s(self) -> float:
        """95th-percentile engine-side TTFT over the sliding window."""
        return _window_p95(self.service_ttfts_s)

    @property
    def mean_batch_size(self) -> float:
        """Mean decode-step batch size over the sliding window."""
        return _window_mean(self.batch_sizes)

    def as_dict(self) -> dict:
        """JSON-friendly snapshot of every counter and windowed statistic."""
        return {
            "requests_completed": self.requests_completed,
            "tokens_generated": self.tokens_generated,
            "batches": self.batches,
            "iterations": self.iterations,
            "drift_probes": self.drift_probes,
            "recalibrations": self.recalibrations,
            "layers_reprogrammed": self.layers_reprogrammed,
            "preempted": self.preempted,
            "planes_packed": self.planes_packed,
            "pack_reuses": self.pack_reuses,
            "fused_rows": self.fused_rows,
            "decode_wall_s": round(self.decode_wall_s, 6),
            "tokens_per_s": round(self.tokens_per_s, 2),
            "projected_busy_s": round(self.projected_busy_s, 9),
            "projected_tokens_per_s": round(self.projected_tokens_per_s, 2),
            "mean_latency_s": round(self.mean_latency_s, 6),
            "p95_latency_s": round(self.p95_latency_s, 6),
            "mean_ttft_s": round(self.mean_ttft_s, 6),
            "p95_ttft_s": round(self.p95_ttft_s, 6),
            "mean_tpot_s": round(self.mean_tpot_s, 6),
            "mean_queued_s": round(self.mean_queued_s, 6),
            "p95_queued_s": round(self.p95_queued_s, 6),
            "mean_service_ttft_s": round(self.mean_service_ttft_s, 6),
            "p95_service_ttft_s": round(self.p95_service_ttft_s, 6),
            "mean_batch_size": round(self.mean_batch_size, 3),
        }


@dataclass(frozen=True)
class RecalibrationPolicy:
    """When and how a :class:`ServingEngine` recovers from device drift.

    Deployed crossbars served through a fault-injecting backend
    (:class:`~repro.rram.backend.FaultySimBackend`) drift away from their
    programmed conductances over the backend's ``advance()`` clock.  Under
    this policy the engine periodically issues deterministic probe GEMVs
    (:meth:`~repro.pim.hybrid.HybridLinear.probe_drift`) and, when the
    worst layer's probe error crosses ``drift_threshold``, re-programs the
    drifted tiles and/or re-runs activation-scale calibration.  Re-program
    traffic is accounted in :class:`~repro.rram.crossbar.GemvStats` and the
    backend's wear ledger; probe/recovery counts land in
    :class:`ServingStats`.

    Parameters
    ----------
    interval_steps:
        Probe every N engine steps that performed work (static batches or
        continuous iterations).  ``0`` disables automatic probing —
        :meth:`ServingEngine.recalibrate` can still be called manually.
    drift_threshold:
        Worst-layer *increase* in L1-relative probe error over the
        baseline captured at the first probe.  Static error sources (ADC
        clipping, the frozen programming-noise draw) are part of the
        baseline, so the threshold isolates the time-varying drift/wear
        signal.
    reprogram:
        Re-write drifted layers' cells on recovery (resets their drift
        clock and redraws programming noise, wear-scaled on faulty
        backends).
    recalibrate_scales:
        Re-run deploy-time activation calibration after recovery (requires
        the engine to hold calibration prompts).
    probe_seed:
        Seed of the deterministic probe vectors, so repeated probes measure
        the same input and their errors are comparable over time.
    """

    interval_steps: int = 0
    drift_threshold: float = 0.05
    reprogram: bool = True
    recalibrate_scales: bool = True
    probe_seed: int = 0

    def __post_init__(self) -> None:
        """Validate interval and threshold at the boundary."""
        if self.interval_steps < 0:
            raise ValueError(f"interval_steps must be >= 0, got {self.interval_steps}")
        if self.drift_threshold < 0:
            raise ValueError(
                f"drift_threshold must be >= 0, got {self.drift_threshold}"
            )


class ServingEngine:
    """Dynamic-batching front-end over one (PIM-deployed) decoder.

    Parameters
    ----------
    model:
        The decoder to serve — typically the output of
        :meth:`ServingEngine.deploy` (hybrid SLC/MLC layers attached), but
        any :class:`DecoderLM` works (useful for host-only baselines).
    max_batch_size:
        Upper bound on requests decoded together (cache rows for the
        continuous scheduler).
    max_wait_s:
        Batching knob: an idle engine starts work once its oldest request
        has waited this long (or ``max_batch_size`` are queued).  ``0``
        serves whatever is queued immediately (latency-optimal); larger
        values trade queueing latency for fuller batches.  Under the
        continuous policy this only gates *starting from idle* — once rows
        are live, new requests join the moment a row frees up.
    scheduler:
        ``"continuous"`` (default, iteration-level batching) or
        ``"static"`` (all-or-nothing batches; the historical path).
    max_tokens:
        Optional admission token budget (continuous only): total KV
        positions (prompt + full budget) reserved by in-flight requests
        never exceeds this.  ``None`` = bounded by ``max_batch_size`` and
        the model's ``max_seq_len`` alone.
    plane_cache:
        Continuous only: memoize packed activation bit-planes across the
        crossbar stages of each decode step
        (:class:`~repro.rram.kernels.PlaneCache`; default on).  ``False``
        packs fresh on every layer call — the bitwise-identical control
        the plane-cache equivalence tests compare against.
    cache_slots:
        Size of the KV-cache slot pool (free slots retained across
        batches / busy periods).
    rng:
        Optional sampling Generator shared by all requests; None = greedy.
    eos_id / pad_id:
        Per-row stop token and padding filler for ragged batches.
    clock:
        Injectable time source (tests); defaults to ``time.perf_counter``.
        Every timestamp the engine records — ``submitted_at``, queueing,
        TTFT, TPOT, latency — is read from this clock.
    """

    def __init__(
        self,
        model: DecoderLM,
        max_batch_size: int = 8,
        max_wait_s: float = 0.0,
        cache_slots: int = 4,
        rng: np.random.Generator | None = None,
        eos_id: int | None = None,
        pad_id: int = 0,
        clock: Callable[[], float] = time.perf_counter,
        scheduler: str = "continuous",
        max_tokens: int | None = None,
        plane_cache: bool = True,
        shard_plan=None,
        recalibration: RecalibrationPolicy | None = None,
        calibration_prompts: np.ndarray | None = None,
        pipeline: int | bool | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}")
        self.model = model
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.rng = rng
        self.eos_id = eos_id
        self.pad_id = pad_id
        self.clock = clock
        self.scheduler = scheduler
        self.max_tokens = max_tokens
        self.slot_pool = CacheSlotPool(model, max_slots=cache_slots)
        self.stats = ServingStats()
        self._continuous: ContinuousScheduler | None = None
        if scheduler == "continuous":
            self._continuous = ContinuousScheduler(
                model,
                self.slot_pool,
                max_batch_size,
                clock=clock,
                rng=rng,
                eos_id=eos_id,
                max_tokens=max_tokens,
                plane_cache=plane_cache,
            )
        elif max_tokens is not None:
            raise ValueError("max_tokens is an admission budget of the continuous scheduler")
        self._queue: list[GenerationRequest] = []
        # Completed-but-unclaimed results, bounded FIFO: oldest unclaimed
        # results are dropped once the buffer is full (dict preserves
        # insertion order), so a long-lived engine cannot leak memory when
        # callers never pop.
        self._completed: dict[int, RequestResult] = {}
        self.result_buffer = STATS_WINDOW
        self._next_id = 0
        self._hybrid_layers: dict[str, HybridLinear] = {}
        for name, module in model.named_modules():
            if isinstance(module, HybridLinear):
                self._hybrid_layers[name] = module
        # Analog-attention deployment context (set by deploy(attention=
        # "analog")): the CrossbarAttentionExecutor behind the model's
        # AnalogAttention modules and crossbar-backed KV caches.
        self._attention_executor = None
        # Online recalibration (drift probes + recovery) — see
        # :class:`RecalibrationPolicy`.  Calibration prompts are retained so
        # recovery can re-freeze activation scales the same way deploy did.
        self.recalibration = recalibration
        self._calibration_prompts = (
            None
            if calibration_prompts is None
            else np.atleast_2d(np.asarray(calibration_prompts, dtype=np.int64))
        )
        self._steps_since_probe = 0
        self._probe_baseline: dict[str, float] | None = None
        # Sharded multi-chip deployment (tensor/pipeline parallelism): the
        # plan drives hardware-projected latency per request and routes
        # pipeline handoff traffic into the mesh's ledger.
        self.shard_plan = shard_plan
        self._projection = None
        if shard_plan is not None:
            from repro.dist import HardwareProjection

            self._projection = HardwareProjection(
                shard_plan, hidden_dim=model.config.d_model
            )
        # Stage-pipelined decode executor (continuous only): overlap stage i
        # of token t with stage i-1 of token t+1 across the ShardPlan's
        # pipeline assignment (or an even `pipeline`-way block split when no
        # plan is present).  Noiseless outputs stay bitwise-equal to the
        # sequential path — see repro.dist.pipeline.
        self.executor = None
        if pipeline:
            if self._continuous is None:
                raise ValueError("pipeline execution requires the continuous scheduler")
            from repro.dist.pipeline import PipelinedBlockExecutor

            num_stages = None if pipeline is True else int(pipeline)
            self.executor = PipelinedBlockExecutor(
                model, shard_plan=shard_plan, num_stages=num_stages
            )
            self._continuous.executor = self.executor
        # Cross-thread serving support: submit()/pop_result() may run on an
        # asyncio event-loop thread while step() runs on a driver thread.
        # The lock guards the ingress queue, the result retention dict and
        # id allocation; the decode itself never holds it.
        self._lock = threading.Lock()
        self._ingress: deque[GenerationRequest] = deque()

    # ------------------------------------------------------------------
    # Deployment helpers
    # ------------------------------------------------------------------
    @classmethod
    def deploy(
        cls,
        model: DecoderLM,
        plans: dict,
        calibration_prompts: np.ndarray | None = None,
        noise=None,
        mode: str = "fast",
        seed: int = 0,
        policy=None,
        mesh=None,
        tensor_parallel: int = 1,
        shard_parallel: bool = False,
        backend=None,
        attention: str = "host",
        **engine_kwargs,
    ) -> "ServingEngine":
        """Attach hybrid SLC/MLC layers to ``model`` and wrap it in an engine.

        ``plans`` is the gradient-redistribution output (name -> LayerPlan).
        ``calibration_prompts`` (B, L) are pushed through the deployed model
        once to freeze activation quantization scales (meaningful for
        ``mode="crossbar"``; a no-op for the fast Eq. 5 path, which does not
        quantize activations).

        ``mesh`` (a :class:`~repro.dist.DeviceMesh`) enables sharded
        multi-chip execution: a :class:`~repro.dist.ShardPlan` is derived
        from the HyFlexPIM chip mapper, every attached layer is partitioned
        into ``tensor_parallel`` rank shards (``shard_parallel=True`` fans
        the shard GEMVs over threads), and the engine reports
        hardware-projected latency per request plus the interconnect
        traffic actually exercised.  Calibration runs *after* sharding so
        frozen scales observe the serving-path activations.

        ``backend`` (a :class:`~repro.rram.backend.CrossbarBackend`) selects
        the crossbar execution target — e.g. a
        :class:`~repro.rram.backend.FaultySimBackend` for lifetime studies;
        ``None`` uses the process-wide default.  Pass a
        :class:`RecalibrationPolicy` via ``recalibration=`` to enable
        online drift probing and recovery; the calibration prompts are
        retained on the engine so recovery can re-freeze activation scales.

        ``attention`` selects where the dynamic attention products run:
        ``"host"`` (default) keeps ``Q·Kᵀ``/``S·V`` as host matmuls;
        ``"analog"`` swaps every block's attention for an
        :class:`~repro.nn.attention.AnalogAttention` executing them as
        crossbar GEMVs against per-token-written KV dynamic operands
        (:class:`~repro.pim.attention.CrossbarAttentionExecutor`), and
        points the model's KV-cache factory at crossbar-backed caches so
        the continuous scheduler is unchanged.  With a ``mesh``, attention
        heads are placed over the plan's chips and every KV write is
        charged to the interconnect ledger.
        """
        import copy

        if attention not in ("host", "analog"):
            raise ValueError(
                f'attention must be "host" or "analog", got {attention!r}'
            )
        deployed = copy.deepcopy(model)
        attached = attach_hybrid_layers(
            deployed, plans, noise=noise, mode=mode, seed=seed, policy=policy,
            backend=backend,
        )
        if mesh is not None:
            from repro.dist import ShardPlan, deploy_sharded

            plan = ShardPlan.build(
                plans, mesh, tensor_parallel=tensor_parallel, noise=noise, seed=seed
            )
            deploy_sharded(attached, plan, parallel=shard_parallel)
            engine_kwargs.setdefault("shard_plan", plan)
        if calibration_prompts is not None and mode == "crossbar":
            prompts = np.atleast_2d(np.asarray(calibration_prompts))
            # Serving always decodes in eval mode (generate() enforces it);
            # calibration must observe the same dropout-free activations.
            deployed.eval()

            def run_calibration() -> None:
                with no_grad():  # inference-only: skip autograd bookkeeping
                    deployed(prompts)

            calibrate_activations(attached, run_calibration)
            # Served-traffic accounting starts from zero: the calibration
            # forward must not inflate gemv_stats()' energy inputs — nor
            # the mesh's exercised-link ledger (hardware_report()).
            for layer in attached.values():
                layer.reset_stats()
            if mesh is not None:
                mesh.reset_traffic()
            engine_kwargs.setdefault("calibration_prompts", prompts)
        executor = None
        if attention == "analog":
            from repro.nn.attention import AnalogAttention
            from repro.pim.attention import CrossbarAttentionExecutor
            from repro.rram import DEFAULT_NOISE, MLC2

            spec = noise if noise is not None else DEFAULT_NOISE
            placement = None
            if mesh is not None:
                from repro.dist import place_attention_heads

                placement = place_attention_heads(
                    engine_kwargs.get("shard_plan") or mesh,
                    deployed.config.num_layers,
                    deployed.config.num_heads,
                )
            executor = CrossbarAttentionExecutor(
                cell=MLC2,
                noise_sigma=spec.sigma(MLC2),
                policy=policy,
                backend=backend,
                seed=seed,
                mesh=mesh,
                placement=placement,
            )
            for block in deployed.blocks:
                block.attn = AnalogAttention.from_host(block.attn, executor)
            # Pooled caches now come out crossbar-backed (same geometry).
            deployed.kv_cache_factory = executor.make_cache
        engine = cls(deployed, **engine_kwargs)
        engine._attention_executor = executor
        return engine

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        on_token: TokenCallback | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> int:
        """Enqueue one prompt; returns its request id.

        ``on_token`` is an optional streaming callback ``(request_id,
        token)``: under continuous scheduling it fires the moment each
        token is emitted; under static scheduling it fires per token once
        the request's batch completes.

        ``priority`` ranks admission (higher first, FIFO within a class);
        ``deadline_s`` is a relative SLO budget — the request must finish
        within this many clock seconds of submission or it expires in the
        queue / is preempted mid-decode (continuous scheduler only; the
        result carries ``preempted=True`` and the tokens emitted so far).

        Thread-safe: may be called from any thread while another thread
        drives :meth:`step` — requests land in a locked ingress queue that
        ``step`` drains in priority order.
        """
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        capacity = self.model.config.max_seq_len
        if prompt.size + max_new_tokens > capacity:
            raise ValueError(
                f"request needs {prompt.size + max_new_tokens} positions, "
                f"model max_seq_len is {capacity}"
            )
        if self.max_tokens is not None and prompt.size + max_new_tokens > self.max_tokens:
            raise ValueError(
                f"request reserves {prompt.size + max_new_tokens} tokens, "
                f"over the engine's max_tokens budget {self.max_tokens}"
            )
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        submitted_at = self.clock()
        deadline_at = None if deadline_s is None else submitted_at + deadline_s
        with self._lock:
            request = GenerationRequest(
                request_id=self._next_id,
                prompt=prompt,
                max_new_tokens=int(max_new_tokens),
                submitted_at=submitted_at,
                on_token=on_token,
                priority=int(priority),
                deadline_at=deadline_at,
            )
            self._next_id += 1
            self._ingress.append(request)
        return request.request_id

    def _drain_ingress(self) -> None:
        """Move ingressed requests into the scheduler queue (priority order).

        Each request is inserted before the first strictly-lower-priority
        queued request, so the queue stays ordered by descending priority
        and FIFO within a class.  With all-default priorities the insertion
        point is always the tail — the historical strict-FIFO behaviour.
        Only the step-driving thread touches ``_queue``; the lock is held
        just long enough to snapshot the ingress.
        """
        with self._lock:
            if not self._ingress:
                return
            incoming = list(self._ingress)
            self._ingress.clear()
        keys = [-r.priority for r in self._queue]
        for request in incoming:
            idx = bisect.bisect_right(keys, -request.priority)
            self._queue.insert(idx, request)
            keys.insert(idx, -request.priority)

    @property
    def pending(self) -> int:
        """Queued requests not yet admitted (ingress included)."""
        with self._lock:
            return len(self._queue) + len(self._ingress)

    @property
    def in_flight(self) -> int:
        """Requests currently decoding (continuous scheduler rows; the
        static path never holds work between ``step`` calls)."""
        return self._continuous.live if self._continuous is not None else 0

    def _batch_ready(self) -> bool:
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch_size:
            return True
        return (self.clock() - self._queue[0].submitted_at) >= self.max_wait_s

    def _cut_batch(self) -> list[GenerationRequest]:
        """Take a FIFO prefix of the queue that fits one KV-cache geometry.

        (Static path.)  A batch decodes over ``max(prompt_len) +
        max(budget)`` positions, so two individually-valid requests (long
        prompt + short budget, short prompt + long budget) can jointly
        exceed ``max_seq_len``.  The cut stops *before* the first request
        that would overflow the joint geometry — it simply starts the next
        batch — preserving FIFO order.  (The continuous scheduler has no
        joint geometry: every row decodes at its own length.)
        """
        capacity = self.model.config.max_seq_len
        batch: list[GenerationRequest] = []
        width = budget = 0
        for request in self._queue:
            if len(batch) >= self.max_batch_size:
                break
            new_width = max(width, request.prompt_len)
            new_budget = max(budget, request.max_new_tokens)
            if batch and new_width + new_budget > capacity:
                break
            batch.append(request)
            width, budget = new_width, new_budget
        return batch

    def step(self, force: bool = False) -> list[RequestResult]:
        """Advance the engine once, if the batching policy says it is time.

        Static policy: cut and decode one full batch.  Continuous policy:
        one scheduler iteration — admit from the queue, decode one token
        on every live row, retire finished rows.  ``force`` starts work on
        a partial queue regardless of ``max_wait_s`` (used by
        :meth:`run_until_idle`).  Returns the requests completed by this
        call ([] when nothing ran or nothing finished); results are also
        retained for :meth:`pop_result` until popped.
        """
        work_before = self.stats.batches + self.stats.iterations
        self._drain_ingress()
        if self.scheduler == "static":
            results = self._step_static(force)
        else:
            results = self._step_continuous(force)
        with self._lock:
            for result in results:
                self._completed[result.request_id] = result
            while len(self._completed) > self.result_buffer:
                self._completed.pop(next(iter(self._completed)))
        if self.stats.batches + self.stats.iterations > work_before:
            self._maybe_recalibrate()
        return results

    def _step_static(self, force: bool) -> list[RequestResult]:
        if not self._queue or not (force or self._batch_ready()):
            return []
        batch = self._cut_batch()
        del self._queue[: len(batch)]
        return self._run_batch(batch)

    def _step_continuous(self, force: bool) -> list[RequestResult]:
        scheduler = self._continuous
        if scheduler.live == 0 and (
            not self._queue or not (force or self._batch_ready())
        ):
            return []
        started = self.clock()
        results = scheduler.step(self._queue)
        self.stats.iterations += 1
        self.stats.decode_wall_s += self.clock() - started
        if scheduler.plane_cache is not None:
            self.stats.planes_packed = scheduler.plane_cache.stats.planes_packed
            self.stats.pack_reuses = scheduler.plane_cache.stats.pack_reuses
        self.stats.fused_rows = self.gemv_stats().fused_rows
        if self._projection is not None:
            # Batched decode ships the whole step's hidden vectors across
            # each chip boundary in one fused launch per boundary (case 3),
            # instead of one launch per row: same bytes, per-step (not
            # per-row) ledger accounting.
            rows = scheduler.last_decode_rows + scheduler.last_prefill_tokens
            self.shard_plan.mesh.record_batched_pipeline_handoff(
                self.model.config.d_model,
                rows=rows,
                boundaries=self.shard_plan.pipeline_boundaries,
            )
        self._record_results(results)
        return results

    def pop_result(self, request_id: int) -> RequestResult | None:
        """Claim (and forget) a completed request's result, if any.

        Thread-safe (see :meth:`submit`).
        """
        with self._lock:
            return self._completed.pop(request_id, None)

    @property
    def busy(self) -> bool:
        """True while requests are queued (ingress included) or decoding."""
        with self._lock:
            queued = bool(self._queue) or bool(self._ingress)
        return queued or self.in_flight > 0

    def run_until_idle(self) -> list[RequestResult]:
        """Drain queue and in-flight work; returns results in completion order.

        Returned results stay claimable via :meth:`pop_result` too, so a
        caller draining on behalf of earlier ``submit()`` callers does not
        destroy their results.
        """
        results: list[RequestResult] = []
        while self.busy:
            results.extend(self.step(force=True))
        return results

    def serve(
        self, prompts: Sequence[np.ndarray], max_new_tokens: int
    ) -> list[RequestResult]:
        """Convenience: submit ``prompts`` and drain; results in submit order.

        Any previously queued requests are decoded along the way; their
        results remain claimable via :meth:`pop_result`.
        """
        ids = [self.submit(p, max_new_tokens) for p in prompts]
        wanted = set(ids)
        collected: dict[int, RequestResult] = {}
        while self.busy:
            for result in self.step(force=True):
                if result.request_id in wanted:
                    # Claim eagerly: collecting from step()'s return keeps
                    # serve() immune to result-buffer eviction on huge runs.
                    collected[result.request_id] = result
                    with self._lock:
                        self._completed.pop(result.request_id, None)
        return [collected[i] for i in ids]

    # ------------------------------------------------------------------
    def _run_batch(self, batch: list[GenerationRequest]) -> list[RequestResult]:
        started = self.clock()
        prompt_lens = np.array([r.prompt_len for r in batch], dtype=np.int64)
        budgets = np.array([r.max_new_tokens for r in batch], dtype=np.int64)
        width = int(prompt_lens.max())
        prompts = np.full((len(batch), width), self.pad_id, dtype=np.int64)
        for i, request in enumerate(batch):
            prompts[i, : request.prompt_len] = request.prompt

        cache = self.slot_pool.acquire(len(batch))
        try:
            # Per-row budgets: a short-budget row stops decoding once its own
            # budget is spent instead of riding along to the batch maximum.
            out = self.model.generate(
                prompts,
                max_new_tokens=budgets,
                rng=self.rng,
                prompt_lengths=prompt_lens,
                use_cache=True,
                cache=cache,
                eos_id=self.eos_id,
                pad_id=self.pad_id,
            )
        finally:
            self.slot_pool.release(cache)
        finished = self.clock()
        wall = finished - started

        results = []
        for i, request in enumerate(batch):
            generated = out[i, prompt_lens[i] : prompt_lens[i] + budgets[i]]
            if self.eos_id is not None:
                hits = np.nonzero(generated == self.eos_id)[0]
                if hits.size:
                    generated = generated[: hits[0] + 1]
            generated = np.asarray(generated)
            if request.on_token is not None:
                # The static path cannot stream mid-batch; fire the
                # callback per token once the batch materializes.
                for token in generated:
                    request.on_token(request.request_id, int(token))
            results.append(
                RequestResult(
                    request_id=request.request_id,
                    prompt=request.prompt,
                    tokens=generated,
                    queued_s=started - request.submitted_at,
                    latency_s=finished - request.submitted_at,
                    batch_size=len(batch),
                    # Static results materialize only at batch completion,
                    # so the user-visible first token arrives with the last.
                    ttft_s=finished - request.submitted_at,
                    tpot_s=wall / max(1, int(generated.size)),
                )
            )
        self.stats.batches += 1
        self.stats.decode_wall_s += wall
        self._record_results(results)
        return results

    def _record_results(self, results: list[RequestResult]) -> None:
        for result in results:
            self.stats.requests_completed += 1
            self.stats.tokens_generated += int(result.tokens.size)
            self.stats.latencies_s.append(result.latency_s)
            self.stats.ttfts_s.append(result.ttft_s)
            self.stats.tpots_s.append(result.tpot_s)
            self.stats.batch_sizes.append(result.batch_size)
            self.stats.queued_s.append(result.queued_s)
            if result.tokens.size:
                # Queued-expiry results never saw a first token; only
                # served requests contribute an engine-side TTFT sample.
                self.stats.service_ttfts_s.append(result.service_ttft_s)
            if result.preempted:
                self.stats.preempted += 1
            if self._projection is not None:
                prompt_len = int(result.prompt.shape[0])
                generated = int(result.tokens.size)
                result.projected_latency_s = self._projection.request_latency_s(
                    prompt_len, generated
                )
                self.stats.projected_busy_s += self._projection.request_busy_s(
                    prompt_len, generated
                )
                if self.scheduler == "static":
                    # Every position of this request crossed each chip
                    # boundary once (case 3): record the PCIe-6.0
                    # hidden-vector traffic actually exercised by the
                    # pipeline layout.  (The continuous path accounts this
                    # per step, fused across rows, in _step_continuous.)
                    self.shard_plan.mesh.record_pipeline_handoff(
                        self.model.config.d_model,
                        tokens=prompt_len + generated,
                        boundaries=self.shard_plan.pipeline_boundaries,
                    )

    # ------------------------------------------------------------------
    # Online recalibration (drift probes + recovery)
    # ------------------------------------------------------------------
    def _maybe_recalibrate(self) -> None:
        """Probe-and-recover per the engine's :class:`RecalibrationPolicy`."""
        policy = self.recalibration
        if policy is None or policy.interval_steps == 0 or not self._hybrid_layers:
            return
        self._steps_since_probe += 1
        if self._steps_since_probe < policy.interval_steps:
            return
        self._steps_since_probe = 0
        self.recalibrate()

    def probe_drift(self) -> dict[str, float]:
        """Issue one deterministic drift probe per deployed hybrid layer.

        Returns ``{layer_name: worst L1-relative probe error}`` (empty when
        no hybrid layers are attached).  Probe GEMVs execute on the real
        backend, so their ADC/wordline cost lands in :meth:`gemv_stats`;
        the probe count lands in ``stats.drift_probes``.
        """
        seed = self.recalibration.probe_seed if self.recalibration else 0
        errors = {
            name: layer.probe_drift(probe_seed=seed)
            for name, layer in self._hybrid_layers.items()
        }
        if errors:
            self.stats.drift_probes += 1
        return errors

    def recalibrate(self, force: bool = False) -> dict:
        """Probe drift and recover if over threshold (or ``force``).

        The first call captures a per-layer probe-error *baseline* (static
        ADC clipping and the frozen programming-noise draw); later calls
        threshold the worst layer's error increase over that baseline, so
        only the time-varying drift/wear signal can trigger.  Recovery,
        per the engine's :class:`RecalibrationPolicy` (defaults apply when
        the engine has none): re-program every hybrid layer's cells
        (``reprogram=True``) and re-run activation-scale calibration over
        the retained deploy-time prompts (``recalibrate_scales=True``,
        requires the engine to hold prompts), then drop the baseline so
        the next probe re-captures it against the fresh cells.  Returns a
        summary dict with ``worst_error`` (the baseline-relative drift),
        ``triggered``, ``layers_reprogrammed`` and ``scales_recalibrated``.
        """
        policy = self.recalibration or RecalibrationPolicy()
        errors = self.probe_drift()
        if self._probe_baseline is None:
            self._probe_baseline = dict(errors)
        baseline = self._probe_baseline
        worst = max(
            (max(0.0, err - baseline.get(name, 0.0)) for name, err in errors.items()),
            default=0.0,
        )
        summary = {
            "worst_error": worst,
            "triggered": False,
            "layers_reprogrammed": 0,
            "scales_recalibrated": False,
        }
        if not errors or (not force and worst < policy.drift_threshold):
            return summary
        summary["triggered"] = True
        self._probe_baseline = None
        self.stats.recalibrations += 1
        if policy.reprogram:
            reprogrammed = sum(
                1
                for layer in self._hybrid_layers.values()
                if layer.reprogram() > 0
            )
            summary["layers_reprogrammed"] = reprogrammed
            self.stats.layers_reprogrammed += reprogrammed
        if policy.recalibrate_scales and self._calibration_prompts is not None:
            prompts = self._calibration_prompts
            self.model.eval()

            def run_calibration() -> None:
                with no_grad():
                    self.model(prompts)

            calibrate_activations(self._hybrid_layers, run_calibration)
            summary["scales_recalibrated"] = True
        return summary

    def backend_health(self) -> list[dict]:
        """Health reports of every distinct backend the deployed layers use.

        Deduplicated by backend identity; layers without an explicit
        backend (fast mode, or default-backend deployments) contribute
        nothing.  Each entry is the backend's
        :meth:`~repro.rram.backend.CrossbarBackend.health_report`.
        """
        seen: dict[int, dict] = {}
        for layer in self._hybrid_layers.values():
            backend = getattr(layer, "backend", None)
            if backend is not None and id(backend) not in seen:
                seen[id(backend)] = backend.health_report()
        if self._attention_executor is not None:
            backend = self._attention_executor.backend
            if id(backend) not in seen:
                seen[id(backend)] = backend.health_report()
        return list(seen.values())

    # ------------------------------------------------------------------
    # Hardware accounting
    # ------------------------------------------------------------------
    def gemv_stats(self) -> GemvStats:
        """Merged crossbar operation counts across all deployed layers.

        Crossbar-mode deployments accumulate ADC conversions, wordline
        activations etc. for every served token; feed this to the
        :mod:`repro.arch` energy/latency models to cost served traffic.
        (Fast-mode layers perform no bit-serial simulation, so their stats
        stay zero.)
        """
        total = GemvStats()
        for layer in self._hybrid_layers.values():
            total.merge(layer.merged_stats())
        if self._attention_executor is not None:
            # Dynamic-operand attention: KV writes (initial vs re-program)
            # and the Q·Kᵀ/S·V GEMV read costs, all in the shared sink.
            total.merge(self._attention_executor.stats)
        return total

    def shard_gemv_stats(self) -> list[GemvStats]:
        """Per-shard-index operation counts merged across deployed layers.

        Entry ``s`` aggregates every layer's shard ``s`` (layers with fewer
        shards simply contribute to fewer entries); an undeployed engine
        returns a single merged entry.  This is the per-worker load picture
        tensor-parallel energy accounting needs — balanced slices should
        show balanced ADC/wordline counts.
        """
        per_shard: list[GemvStats] = []
        for layer in self._hybrid_layers.values():
            for index, stats in enumerate(layer.shard_stats()):
                while len(per_shard) <= index:
                    per_shard.append(GemvStats())
                per_shard[index].merge(stats)
        return per_shard

    def hardware_report(self) -> dict:
        """Projected timing + interconnect traffic of the sharded deployment.

        ``None`` when the engine carries no shard plan.  The report couples
        the plan's projected rate/latency with the mesh's traffic ledger —
        i.e. the transfer cycles of the links this engine's traffic
        *actually exercised* — plus the engine's projected throughput over
        everything served so far.
        """
        if self._projection is None:
            return None
        report = self._projection.report()
        report["projected_tokens_per_s"] = round(self.stats.projected_tokens_per_s, 1)
        report["tokens_generated"] = self.stats.tokens_generated
        report["endurance"] = self.endurance_report()
        return report

    def endurance_report(self) -> dict:
        """Write-endurance picture of everything this engine deployed.

        Always available (unlike :meth:`hardware_report`, which needs a
        shard plan): per-layer wear fractions from each hybrid layer's
        :meth:`~repro.pim.hybrid.HybridLinear.wear_report`, the analog
        attention executor's KV-operand wear summary when deployed, and
        the deduplicated backend :meth:`health_report`\\ s (whole-chip
        ledger view, dynamic-write channel included).
        """
        layers = {
            name: layer.wear_report() for name, layer in self._hybrid_layers.items()
        }
        report = {
            "layers": layers,
            "max_layer_wear_fraction": max(
                (entry["max_wear_fraction"] for entry in layers.values()),
                default=0.0,
            ),
            "backends": self.backend_health(),
        }
        if self._attention_executor is not None:
            report["attention"] = self._attention_executor.wear_report()
        return report

    @property
    def attention_executor(self):
        """The analog-attention executor, or None for host-attention deploys."""
        return self._attention_executor

    @property
    def hybrid_layers(self) -> dict[str, HybridLinear]:
        """Name -> deployed hybrid layer (copy; attach order preserved)."""
        return dict(self._hybrid_layers)

    def is_pim_deployed(self) -> bool:
        """Whether hybrid SLC/MLC layers are attached to the model."""
        return bool(self._hybrid_layers)
