"""Weight-to-array mapping and the hybrid SLC/MLC rank split (Section 3.2-3.3).

:class:`MappedMatrix` owns the physical placement of one weight matrix:
how many 64x128 arrays it occupies for a given cell type, the programmed
(noisy) cell contents, and the operation counts of every GEMV executed
against it.

:func:`split_by_rank` implements the paper's hybrid placement: after SVD,
*rank* ``i`` corresponds to row ``i`` of ``A = Σ·Vᵀ`` and column ``i`` of
``B = U``.  Protected ranks are placed on SLC arrays and the rest on MLC
arrays; the two partial GEMVs recombine additively in the digital domain,
so a single logical layer spans both cell types with no accuracy coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rram.adc import SarAdc, required_adc_bits
from repro.rram.backend import CrossbarBackend
from repro.rram.cell import CellType, MLC2, SLC
from repro.rram.crossbar import CrossbarConfig, GemvStats, ProgrammedMatrix
from repro.rram.kernels import KernelPolicy
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec

__all__ = [
    "array_footprint",
    "ShardSpec",
    "MappedMatrix",
    "HybridSplit",
    "split_by_rank",
    "partition_rank",
    "partition_rank_compacted",
]


def array_footprint(
    out_features: int,
    in_features: int,
    cell: CellType,
    config: CrossbarConfig | None = None,
    weight_bits: int = 8,
) -> int:
    """Number of physical arrays needed to store one weight matrix.

    MLC packs ``cell.bits`` weight bits per cell, halving (for 2-bit cells)
    the column footprint relative to SLC — the capacity benefit of Fig. 7.
    """
    config = config or CrossbarConfig()
    slices_per_weight = -(-weight_bits // cell.bits)
    row_tiles = -(-in_features // config.rows)
    col_tiles = -(-(out_features * slices_per_weight) // config.cols)
    return row_tiles * col_tiles


@dataclass(frozen=True)
class ShardSpec:
    """Which slice of a logical rank dimension a mapped shard carries.

    Tensor-parallel deployment (paper Section 3.1, cases 1-2) partitions one
    logical factored matrix across processing units: shard ``index`` of
    ``count`` holds ranks ``[start, stop)`` of a logical ``logical_rank``-wide
    matrix.  A :class:`MappedMatrix` carrying a ``shard`` knows it computes a
    partial result that recombines with its siblings over the interconnect
    (column slices of the stage-1 hidden vector; additive partial sums for
    stage 2).
    """

    index: int
    count: int
    start: int
    stop: int
    logical_rank: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.count:
            raise ValueError(f"shard index {self.index} outside [0, {self.count})")
        if not 0 <= self.start <= self.stop <= self.logical_rank:
            raise ValueError(
                f"shard range [{self.start}, {self.stop}) outside "
                f"[0, {self.logical_rank})"
            )

    @property
    def width(self) -> int:
        """Number of ranks this shard carries."""
        return self.stop - self.start


def partition_rank(rank: int, parts: int, tile: int = 1) -> list[tuple[int, int]]:
    """Balanced contiguous partition of ``[0, rank)`` into ``parts`` slices.

    ``tile`` is the physical array row count: shard boundaries align to
    whole row tiles whenever there are at least as many tiles as shards, so
    tensor parallelism splits *mapped arrays* rather than cutting through
    one array's wordlines.  Tile-aligned shards see exactly the per-tile
    analog sums of the unsharded mapping, which keeps the sharded GEMV
    bitwise-equal even where the ADC saturates — **provided the SLC/MLC
    protected prefix is itself tile-aligned**: :func:`split_by_rank`
    compacts protected and unprotected ranks into separate matrices before
    tiling, so accumulation-tile boundaries live in compacted space, and a
    protected count that is not a multiple of ``tile`` shifts them.  When
    ``parts`` exceeds the tile count the partition falls back to sub-tile
    granularity.  In either unaligned regime, equality requires a
    saturation-free deployment (the ADC clips per tile; noiseless
    saturation-free GEMVs are exact regardless of tiling).

    Empty slices are dropped (a 3-rank layer on a 4-way mesh yields three
    shards), so every returned slice is non-empty and they cover the rank
    dimension exactly once, in order.
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    num_tiles = -(-rank // tile) if rank else 0
    if 0 < parts <= num_tiles:
        tile_bounds = [(num_tiles * p) // parts for p in range(parts + 1)]
        bounds = [min(rank, t * tile) for t in tile_bounds]
    else:
        bounds = [(rank * p) // parts for p in range(parts + 1)]
    return [
        (bounds[p], bounds[p + 1])
        for p in range(parts)
        if bounds[p + 1] > bounds[p]
    ]


def partition_rank_compacted(
    protected: np.ndarray, parts: int, tile: int = 1
) -> list[tuple[int, int]] | None:
    """Balanced contiguous partition aligned in *compacted* SLC/MLC space.

    :func:`split_by_rank` compacts a layer's protected and unprotected
    ranks into separate matrices before tiling, so the accumulation-tile
    boundaries the ADC clips at live in compacted space — a shard boundary
    at logical rank ``b`` preserves the unsharded tiling only when both the
    protected count below ``b`` and the unprotected count below ``b`` are
    multiples of ``tile``.  :func:`partition_rank` balances in *logical*
    rank space and only lands on such boundaries by luck; this variant
    restricts each boundary to the nearest compacted-aligned candidate
    around the balanced target instead.

    Returns ``None`` when no such partition exists with one non-empty
    slice per part (the caller should fall back to
    :func:`partition_rank`'s sub-tile boundaries).  ``parts == 1`` always
    succeeds (a single shard has no interior boundary).
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    protected = np.asarray(protected, dtype=bool)
    rank = protected.size
    if parts == 1:
        return [(0, rank)] if rank else None
    prefix = np.concatenate([[0], np.cumsum(protected)])
    candidates = [
        b
        for b in range(1, rank)
        if prefix[b] % tile == 0 and (b - prefix[b]) % tile == 0
    ]
    bounds = [0]
    for p in range(1, parts):
        ideal = (rank * p) // parts
        feasible = [c for c in candidates if c > bounds[-1]]
        # Keep room for the remaining parts - p boundaries after this one.
        feasible = feasible[: len(feasible) - (parts - 1 - p)]
        if not feasible:
            return None
        bounds.append(min(feasible, key=lambda c: (abs(c - ideal), c)))
    bounds.append(rank)
    return [(bounds[p], bounds[p + 1]) for p in range(parts)]


@dataclass
class MappedMatrix:
    """A weight matrix resident in (simulated) analog RRAM arrays.

    ``shard`` (optional) marks this matrix as one tensor-parallel shard of a
    larger logical matrix — see :class:`ShardSpec`.  Shards are programmed
    exactly like standalone matrices (their noise is drawn from their own
    seed), they just additionally know their place in the logical layout.
    """

    weight_codes: np.ndarray  # (out, in) signed INT8 codes
    cell: CellType
    noise: NoiseSpec = field(default_factory=lambda: DEFAULT_NOISE)
    config: CrossbarConfig = field(default_factory=CrossbarConfig)
    weight_bits: int = 8
    seed: int = 0
    policy: KernelPolicy | None = None
    shard: ShardSpec | None = None
    stats: GemvStats = field(default_factory=GemvStats)
    backend: CrossbarBackend | None = None

    def __post_init__(self) -> None:
        """Validate the codes and program them through the backend."""
        self.weight_codes = np.asarray(self.weight_codes, dtype=np.int64)
        if self.weight_codes.ndim != 2:
            raise ValueError("weight_codes must be 2-D")
        # Static weights are programmed exactly once; noise is frozen here.
        self._programmed = ProgrammedMatrix(
            self.weight_codes,
            self.cell,
            noise_sigma=self.noise.sigma(self.cell),
            rng=np.random.default_rng(self.seed),
            config=self.config,
            weight_bits=self.weight_bits,
            policy=self.policy,
            backend=self.backend,
        )
        self.backend = self._programmed.backend
        self.stats.cells_initial_programmed += self._programmed._tile.num_cells
        self.write_count = 1

    @property
    def out_features(self) -> int:
        """Output dimension of the mapped matrix."""
        return self.weight_codes.shape[0]

    @property
    def in_features(self) -> int:
        """Input dimension of the mapped matrix."""
        return self.weight_codes.shape[1]

    @property
    def arrays_used(self) -> int:
        """Physical crossbar arrays this matrix occupies."""
        return array_footprint(
            self.out_features, self.in_features, self.cell, self.config, self.weight_bits
        )

    @property
    def adc(self) -> SarAdc:
        """The SAR ADC geometry this mapping's bitline reads require."""
        return SarAdc(bits=required_adc_bits(self.config.rows, self.cell.bits))

    def gemv(
        self, input_codes: np.ndarray, policy: KernelPolicy | None = None
    ) -> np.ndarray:
        """Noisy analog GEMV ``x @ W.T`` (signed integer result)."""
        return self._programmed.gemv(input_codes, stats=self.stats, policy=policy)

    def ideal_gemv(self, input_codes: np.ndarray) -> np.ndarray:
        """Noise-free integer reference (for error measurements)."""
        x = np.atleast_2d(np.asarray(input_codes, dtype=np.int64))
        return x @ self.weight_codes.T

    def reprogram(self) -> None:
        """Re-write the arrays (recalibration recovery for drift/wear).

        Bumps ``write_count``, records the traffic in the backend's wear
        ledger and in this matrix's ``stats.cells_reprogrammed``.
        """
        self._programmed.reprogram(stats=self.stats)
        self.write_count += 1


@dataclass
class HybridSplit:
    """The SLC/MLC partition of one factored layer's rank dimension.

    When ``shard`` is set, this split holds only ranks ``[shard.start,
    shard.stop)`` of the layer (one tensor-parallel shard); ``protected``
    is then the local mask over that slice.
    """

    protected: np.ndarray  # boolean (rank,) — local to the shard if any
    slc_a: MappedMatrix | None  # protected rows of A on SLC
    mlc_a: MappedMatrix | None  # remaining rows of A on MLC
    slc_b: MappedMatrix | None  # protected columns of B on SLC
    mlc_b: MappedMatrix | None  # remaining columns of B on MLC
    shard: ShardSpec | None = None

    @property
    def arrays_used(self) -> int:
        """Total crossbar arrays across the four constituent matrices."""
        return sum(
            m.arrays_used
            for m in (self.slc_a, self.mlc_a, self.slc_b, self.mlc_b)
            if m is not None
        )

    def merged_stats(self) -> GemvStats:
        """Sum of the four constituent matrices' GEMV statistics."""
        total = GemvStats()
        for m in (self.slc_a, self.mlc_a, self.slc_b, self.mlc_b):
            if m is not None:
                total.merge(m.stats)
        return total

    def reprogram(self) -> None:
        """Re-write all four constituent matrices (recalibration recovery)."""
        for m in (self.slc_a, self.mlc_a, self.slc_b, self.mlc_b):
            if m is not None:
                m.reprogram()


def split_by_rank(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    protected: np.ndarray,
    noise: NoiseSpec | None = None,
    config: CrossbarConfig | None = None,
    mlc_cell: CellType = MLC2,
    seed: int = 0,
    policy: KernelPolicy | None = None,
    rank_range: tuple[int, int] | None = None,
    shard_index: int = 0,
    num_shards: int = 1,
    backend: CrossbarBackend | None = None,
) -> HybridSplit:
    """Place factored weights on SLC/MLC arrays according to ``protected``.

    ``a_codes`` is the INT8 code matrix of ``A = Σ·Vᵀ`` (rank x in),
    ``b_codes`` of ``B = U`` (out x rank).  Row ``i`` of A and column ``i``
    of B share rank ``i``'s protection decision, so a protected singular
    direction is SLC end-to-end.

    ``rank_range`` (with ``shard_index`` / ``num_shards``) carves one
    tensor-parallel shard out of the logical layer: only ranks ``[start,
    stop)`` are mapped, and every resulting :class:`MappedMatrix` carries a
    :class:`ShardSpec` tying it back to the logical matrix.  A-shards are
    row partitions (each computes a column slice of the hidden vector);
    B-shards are column partitions (each computes an additive partial sum
    of the layer output, recombined over the interconnect — the paper's
    OCI partial-sum aggregation).
    """
    protected = np.asarray(protected, dtype=bool)
    rank = len(protected)
    a_codes = np.asarray(a_codes, dtype=np.int64)
    b_codes = np.asarray(b_codes, dtype=np.int64)
    if a_codes.shape[0] != rank or b_codes.shape[1] != rank:
        raise ValueError(
            f"rank mismatch: mask {rank}, A {a_codes.shape}, B {b_codes.shape}"
        )
    noise = noise or DEFAULT_NOISE
    config = config or CrossbarConfig()

    shard: ShardSpec | None = None
    if rank_range is not None:
        start, stop = rank_range
        shard = ShardSpec(
            index=shard_index,
            count=num_shards,
            start=start,
            stop=stop,
            logical_rank=rank,
        )
        a_codes = a_codes[start:stop, :]
        b_codes = b_codes[:, start:stop]
        protected = protected[start:stop]
    elif num_shards != 1 or shard_index != 0:
        raise ValueError("shard_index/num_shards require rank_range")

    def mapped(codes: np.ndarray, cell: CellType, salt: int) -> MappedMatrix | None:
        if codes.size == 0:
            return None
        return MappedMatrix(
            weight_codes=codes,
            cell=cell,
            noise=noise,
            config=config,
            seed=seed + salt,
            policy=policy,
            shard=shard,
            backend=backend,
        )

    return HybridSplit(
        protected=protected,
        slc_a=mapped(a_codes[protected, :], SLC, 1),
        mlc_a=mapped(a_codes[~protected, :], mlc_cell, 2),
        slc_b=mapped(b_codes[:, protected], SLC, 3),
        mlc_b=mapped(b_codes[:, ~protected], mlc_cell, 4),
        shard=shard,
    )
