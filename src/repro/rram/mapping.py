"""Weight-to-array mapping and the hybrid SLC/MLC rank split (Section 3.2-3.3).

:class:`MappedMatrix` owns the physical placement of one weight matrix:
how many 64x128 arrays it occupies for a given cell type, the programmed
(noisy) cell contents, and the operation counts of every GEMV executed
against it.

:func:`split_by_rank` implements the paper's hybrid placement: after SVD,
*rank* ``i`` corresponds to row ``i`` of ``A = Σ·Vᵀ`` and column ``i`` of
``B = U``.  Protected ranks are placed on SLC arrays and the rest on MLC
arrays; the two partial GEMVs recombine additively in the digital domain,
so a single logical layer spans both cell types with no accuracy coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rram.adc import SarAdc, required_adc_bits
from repro.rram.cell import CellType, MLC2, SLC
from repro.rram.crossbar import CrossbarConfig, GemvStats, ProgrammedMatrix
from repro.rram.kernels import KernelPolicy
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec

__all__ = ["array_footprint", "MappedMatrix", "HybridSplit", "split_by_rank"]


def array_footprint(
    out_features: int,
    in_features: int,
    cell: CellType,
    config: CrossbarConfig | None = None,
    weight_bits: int = 8,
) -> int:
    """Number of physical arrays needed to store one weight matrix.

    MLC packs ``cell.bits`` weight bits per cell, halving (for 2-bit cells)
    the column footprint relative to SLC — the capacity benefit of Fig. 7.
    """
    config = config or CrossbarConfig()
    slices_per_weight = -(-weight_bits // cell.bits)
    row_tiles = -(-in_features // config.rows)
    col_tiles = -(-(out_features * slices_per_weight) // config.cols)
    return row_tiles * col_tiles


@dataclass
class MappedMatrix:
    """A weight matrix resident in (simulated) analog RRAM arrays."""

    weight_codes: np.ndarray  # (out, in) signed INT8 codes
    cell: CellType
    noise: NoiseSpec = field(default_factory=lambda: DEFAULT_NOISE)
    config: CrossbarConfig = field(default_factory=CrossbarConfig)
    weight_bits: int = 8
    seed: int = 0
    policy: KernelPolicy | None = None
    stats: GemvStats = field(default_factory=GemvStats)

    def __post_init__(self) -> None:
        self.weight_codes = np.asarray(self.weight_codes, dtype=np.int64)
        if self.weight_codes.ndim != 2:
            raise ValueError("weight_codes must be 2-D")
        # Static weights are programmed exactly once; noise is frozen here.
        self._programmed = ProgrammedMatrix(
            self.weight_codes,
            self.cell,
            noise_sigma=self.noise.sigma(self.cell),
            rng=np.random.default_rng(self.seed),
            config=self.config,
            weight_bits=self.weight_bits,
            policy=self.policy,
        )
        self.write_count = 1

    @property
    def out_features(self) -> int:
        return self.weight_codes.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight_codes.shape[1]

    @property
    def arrays_used(self) -> int:
        return array_footprint(
            self.out_features, self.in_features, self.cell, self.config, self.weight_bits
        )

    @property
    def adc(self) -> SarAdc:
        return SarAdc(bits=required_adc_bits(self.config.rows, self.cell.bits))

    def gemv(
        self, input_codes: np.ndarray, policy: KernelPolicy | None = None
    ) -> np.ndarray:
        """Noisy analog GEMV ``x @ W.T`` (signed integer result)."""
        return self._programmed.gemv(input_codes, stats=self.stats, policy=policy)

    def ideal_gemv(self, input_codes: np.ndarray) -> np.ndarray:
        """Noise-free integer reference (for error measurements)."""
        x = np.atleast_2d(np.asarray(input_codes, dtype=np.int64))
        return x @ self.weight_codes.T


@dataclass
class HybridSplit:
    """The SLC/MLC partition of one factored layer's rank dimension."""

    protected: np.ndarray  # boolean (rank,)
    slc_a: MappedMatrix | None  # protected rows of A on SLC
    mlc_a: MappedMatrix | None  # remaining rows of A on MLC
    slc_b: MappedMatrix | None  # protected columns of B on SLC
    mlc_b: MappedMatrix | None  # remaining columns of B on MLC

    @property
    def arrays_used(self) -> int:
        return sum(
            m.arrays_used
            for m in (self.slc_a, self.mlc_a, self.slc_b, self.mlc_b)
            if m is not None
        )

    def merged_stats(self) -> GemvStats:
        total = GemvStats()
        for m in (self.slc_a, self.mlc_a, self.slc_b, self.mlc_b):
            if m is not None:
                total.merge(m.stats)
        return total


def split_by_rank(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    protected: np.ndarray,
    noise: NoiseSpec | None = None,
    config: CrossbarConfig | None = None,
    mlc_cell: CellType = MLC2,
    seed: int = 0,
    policy: KernelPolicy | None = None,
) -> HybridSplit:
    """Place factored weights on SLC/MLC arrays according to ``protected``.

    ``a_codes`` is the INT8 code matrix of ``A = Σ·Vᵀ`` (rank x in),
    ``b_codes`` of ``B = U`` (out x rank).  Row ``i`` of A and column ``i``
    of B share rank ``i``'s protection decision, so a protected singular
    direction is SLC end-to-end.
    """
    protected = np.asarray(protected, dtype=bool)
    rank = len(protected)
    a_codes = np.asarray(a_codes, dtype=np.int64)
    b_codes = np.asarray(b_codes, dtype=np.int64)
    if a_codes.shape[0] != rank or b_codes.shape[1] != rank:
        raise ValueError(
            f"rank mismatch: mask {rank}, A {a_codes.shape}, B {b_codes.shape}"
        )
    noise = noise or DEFAULT_NOISE
    config = config or CrossbarConfig()

    def mapped(codes: np.ndarray, cell: CellType, salt: int) -> MappedMatrix | None:
        if codes.size == 0:
            return None
        return MappedMatrix(
            weight_codes=codes,
            cell=cell,
            noise=noise,
            config=config,
            seed=seed + salt,
            policy=policy,
        )

    return HybridSplit(
        protected=protected,
        slc_a=mapped(a_codes[protected, :], SLC, 1),
        mlc_a=mapped(a_codes[~protected, :], mlc_cell, 2),
        slc_b=mapped(b_codes[:, protected], SLC, 3),
        mlc_b=mapped(b_codes[:, ~protected], mlc_cell, 4),
    )
