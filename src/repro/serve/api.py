"""Asyncio HTTP streaming front-end over the serving engine.

The measured scale-out tier's front door: a stdlib-only
(:func:`asyncio.start_server`) HTTP/1.1 server that turns POSTed prompts
into :class:`~repro.serve.ServingEngine` requests (or
:class:`~repro.serve.replica.ReplicaPool` submissions) and streams tokens
back SSE-style as the continuous scheduler emits them.

Routes
------
``GET /healthz``
    Liveness probe: ``{"ok": true}``.
``GET /v1/stats``
    The engine's :meth:`~repro.serve.ServingStats.as_dict` snapshot (or
    the pool's outstanding/requeue counters).
``POST /v1/generate``
    Body: ``{"prompt": [int, ...], "max_new_tokens": int,
    "stream": bool, "priority": int | str, "deadline_s": float,
    "session": str}``.  ``stream: true`` responds as
    ``text/event-stream`` with one ``data: {"token": t}`` event per
    emitted token and a final ``data: {"done": ...}`` event carrying the
    full result; otherwise a single JSON body.

Admission control (:class:`AdmissionPolicy`): a queue-depth bound that
returns **503** the moment queued + in-flight work passes the limit (the
open-loop load generator's back-pressure signal), named priority classes
mapped onto the engine's priority-ordered queue, and a default
per-request deadline after which a queued request expires unserved and a
decoding one is preempted (see :mod:`repro.serve.continuous`).

Threading model: the asyncio loop owns sockets only.  A dedicated driver
thread steps the engine (or polls the pool); tokens and completions cross
back into the loop via ``loop.call_soon_threadsafe`` onto per-request
``asyncio.Queue``\\ s.  Both targets lock their own book-keeping
(``ServingEngine`` submit/pop_result, ``ReplicaPool``'s internal RLock),
so the handler thread and driver thread never race.  Handlers never hold
``_waiters_lock`` across ``submit`` — a full replica inbox makes
``pool.submit`` poll (and fire token callbacks) on the submitting thread,
so the callbacks write straight to their captured queue instead.

The module also ships the blocking socket clients the tests and the
open-loop benchmark use (:func:`api_request`, :func:`stream_generate`) —
measured TTFT is *client-observed* (first SSE event arrival), not an
engine-side estimate.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["AdmissionPolicy", "ApiServer", "api_request", "stream_generate"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """SLO-aware admission knobs for :class:`ApiServer`.

    Parameters
    ----------
    max_queue_depth:
        Reject new generate requests with **503** once queued + in-flight
        requests reach this bound; ``None`` admits unconditionally.
    default_priority:
        Priority assigned when the request names none.
    default_deadline_s:
        Deadline attached when the request names none; ``None`` = no SLO.
    priority_classes:
        Named classes a request may use instead of a raw integer
        (``"priority": "interactive"``), e.g.
        ``{"interactive": 10, "batch": 0}``.
    """

    max_queue_depth: int | None = None
    default_priority: int = 0
    default_deadline_s: float | None = None
    priority_classes: dict = field(default_factory=dict)

    def resolve_priority(self, raw) -> int:
        """Map a request's raw priority (int, class name or None) to int."""
        if raw is None:
            return self.default_priority
        if isinstance(raw, str):
            if raw not in self.priority_classes:
                raise ValueError(f"unknown priority class {raw!r}")
            return int(self.priority_classes[raw])
        return int(raw)


def _json_response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              503: "Service Unavailable"}.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    return head.encode() + body


_SSE_HEAD = (
    b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
    b"Cache-Control: no-cache\r\nConnection: close\r\n\r\n"
)


def _sse_event(payload: dict) -> bytes:
    return b"data: " + json.dumps(payload).encode() + b"\n\n"


class ApiServer:
    """Streaming HTTP front-end over one engine or a replica pool.

    ``target`` is either a :class:`~repro.serve.ServingEngine` (driven by
    a background step thread; priority/deadline admission supported) or a
    :class:`~repro.serve.replica.ReplicaPool` (driven by a poll thread;
    requests are routed across replicas, SLO fields ignored by the
    workers).  Start with :meth:`start_in_thread` (tests/benchmarks) or
    await :meth:`start` inside an existing event loop.
    """

    def __init__(self, target, policy: AdmissionPolicy | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.target = target
        self.policy = policy or AdmissionPolicy()
        self.host = host
        self.port = port
        self.is_pool = hasattr(target, "poll")
        self.rejected = 0  # 503s issued by the queue-depth bound
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._waiters: dict[int, asyncio.Queue] = {}
        self._waiters_lock = threading.Lock()
        self._driver: threading.Thread | None = None
        self._running = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and launch the engine driver thread."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._running.set()
        self._driver = threading.Thread(target=self._drive, daemon=True)
        self._driver.start()

    async def stop(self) -> None:
        """Stop accepting, stop the driver, close the socket."""
        self._running.clear()
        if self._driver is not None:
            self._driver.join(timeout=5.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def start_in_thread(self) -> None:
        """Run the server on a dedicated event-loop thread; returns when ready."""
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            ready.set()
            loop.run_forever()
            loop.run_until_complete(self.stop())
            loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise RuntimeError("API server failed to start within 10s")

    def stop_in_thread(self) -> None:
        """Stop a :meth:`start_in_thread` server and join its thread."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Driver thread: steps the engine / polls the pool, pushes events
    # into the owning request's asyncio queue via the loop.
    # ------------------------------------------------------------------
    def _drive(self) -> None:
        while self._running.is_set():
            worked = False
            if self.is_pool:
                worked = bool(self.target.poll())
                self._collect_done()
            elif self.target.busy:
                self.target.step(force=True)
                self._collect_done()
                worked = True
            if not worked:
                time.sleep(0.0005)

    def _collect_done(self) -> None:
        with self._waiters_lock:
            pending = list(self._waiters.keys())
        for request_id in pending:
            result = self.target.pop_result(request_id)
            if result is not None:
                self._push(request_id, ("done", result))
                with self._waiters_lock:
                    self._waiters.pop(request_id, None)

    def _push(self, request_id: int, event) -> None:
        with self._waiters_lock:
            queue = self._waiters.get(request_id)
        if queue is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(queue.put_nowait, event)

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0))
            if length:
                body = await reader.readexactly(length)
            await self._route(method, path, body, writer)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if method == "GET" and path == "/healthz":
            writer.write(_json_response(200, {"ok": True}))
            await writer.drain()
            return
        if method == "GET" and path == "/v1/stats":
            writer.write(_json_response(200, self._stats()))
            await writer.drain()
            return
        if method == "POST" and path == "/v1/generate":
            await self._generate(body, writer)
            return
        writer.write(_json_response(404, {"error": f"no route {method} {path}"}))
        await writer.drain()

    def _stats(self) -> dict:
        if self.is_pool:
            return {
                "outstanding": self.target.outstanding,
                "requeues": self.target.requeues,
                "outstanding_tokens": self.target.outstanding_tokens(),
                "rejected": self.rejected,
            }
        stats = self.target.stats.as_dict()
        stats["pending"] = self.target.pending
        stats["in_flight"] = self.target.in_flight
        stats["rejected"] = self.rejected
        return stats

    def _depth(self) -> int:
        if self.is_pool:
            return self.target.outstanding
        return self.target.pending + self.target.in_flight

    async def _generate(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
            prompt = np.asarray(payload["prompt"], dtype=np.int64)
            max_new = int(payload.get("max_new_tokens", 16))
            stream = bool(payload.get("stream", False))
            priority = self.policy.resolve_priority(payload.get("priority"))
            deadline_s = payload.get("deadline_s", self.policy.default_deadline_s)
            if deadline_s is not None:
                deadline_s = float(deadline_s)
            session = payload.get("session")
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            writer.write(_json_response(400, {"error": str(exc)}))
            await writer.drain()
            return
        depth = self._depth()
        if self.policy.max_queue_depth is not None and depth >= self.policy.max_queue_depth:
            self.rejected += 1
            writer.write(_json_response(503, {"error": "overloaded", "depth": depth}))
            await writer.drain()
            return

        queue: asyncio.Queue = asyncio.Queue()
        loop = asyncio.get_running_loop()

        def on_token(rid: int, token: int) -> None:
            # Fires on the driver thread — or on *this* thread when a full
            # replica inbox makes pool.submit() poll for back-pressure.
            # The queue is captured directly, so token delivery needs no
            # waiter registration and no lock (which is what lets submit()
            # run outside _waiters_lock below without dropping tokens).
            loop.call_soon_threadsafe(queue.put_nowait, ("token", int(token)))

        try:
            if self.is_pool:
                request_id = self.target.submit(
                    prompt, max_new, session=session, on_token=on_token)
            else:
                request_id = self.target.submit(
                    prompt, max_new, on_token=on_token,
                    priority=priority, deadline_s=deadline_s)
        except ValueError as exc:
            writer.write(_json_response(400, {"error": str(exc)}))
            await writer.drain()
            return
        # Register the waiter *after* submit: completions are retained by
        # the target until pop_result, and _collect_done only pops ids it
        # finds registered, so a result that lands in this gap is simply
        # delivered on the driver thread's next sweep.  Holding the lock
        # across submit instead would deadlock when pool back-pressure
        # re-enters via on_token on this same thread.
        with self._waiters_lock:
            self._waiters[request_id] = queue

        if stream:
            writer.write(_SSE_HEAD)
            await writer.drain()
        tokens: list[int] = []
        while True:
            kind, value = await queue.get()
            if kind == "token":
                tokens.append(int(value))
                if stream:
                    writer.write(_sse_event({"token": int(value)}))
                    await writer.drain()
                continue
            result = value  # "done"
            summary = {
                "done": True,
                "request_id": request_id,
                "tokens": [int(t) for t in result.tokens],
                "preempted": bool(result.preempted),
                "queued_s": result.queued_s,
                "latency_s": result.latency_s,
                "ttft_s": result.ttft_s,
                "tpot_s": result.tpot_s,
            }
            if stream:
                writer.write(_sse_event(summary))
            else:
                writer.write(_json_response(200, summary))
            await writer.drain()
            return


# ----------------------------------------------------------------------
# Blocking clients (tests + open-loop load generator)
# ----------------------------------------------------------------------
def _read_http_response(sock: socket.socket) -> tuple[int, bytes]:
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body


def api_request(host: str, port: int, path: str, payload: dict | None = None,
                timeout_s: float = 30.0) -> tuple[int, dict]:
    """One blocking JSON request: ``(status, parsed body)``.

    GET when ``payload`` is None, POST otherwise.
    """
    body = b"" if payload is None else json.dumps(payload).encode()
    method = "GET" if payload is None else "POST"
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(head.encode() + body)
        status, raw = _read_http_response(sock)
    return status, json.loads(raw.decode() or "{}")


def stream_generate(host: str, port: int, payload: dict,
                    timeout_s: float = 60.0) -> dict:
    """POST ``/v1/generate`` with ``stream: true``; parse the SSE stream.

    Returns the final ``done`` summary plus *client-observed* timing:
    ``client_ttft_s`` (send -> first token event on the wire) and
    ``client_latency_s`` (send -> done event) — the measured numbers the
    open-loop benchmark records, as opposed to the engine's own view.
    """
    payload = dict(payload)
    payload["stream"] = True
    body = json.dumps(payload).encode()
    head = (
        f"POST /v1/generate HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    sent_at = time.perf_counter()
    first_token_at = None
    tokens: list[int] = []
    summary: dict = {}
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(head.encode() + body)
        buffer = b""
        header_seen = False
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
            if not header_seen:
                head_part, sep, rest = buffer.partition(b"\r\n\r\n")
                if not sep:
                    continue
                status = int(head_part.split()[1])
                if status != 200:
                    while chunk:
                        chunk = sock.recv(65536)
                        buffer += chunk
                    _, _, err_body = buffer.partition(b"\r\n\r\n")
                    return {"status": status, **json.loads(err_body.decode() or "{}")}
                buffer = rest
                header_seen = True
            while b"\n\n" in buffer:
                event, _, buffer = buffer.partition(b"\n\n")
                if not event.startswith(b"data: "):
                    continue
                data = json.loads(event[len(b"data: "):].decode())
                if "token" in data:
                    if first_token_at is None:
                        first_token_at = time.perf_counter()
                    tokens.append(data["token"])
                elif data.get("done"):
                    summary = data
            if summary:
                break
    done_at = time.perf_counter()
    summary.setdefault("tokens", tokens)
    summary["status"] = 200
    summary["client_ttft_s"] = (
        (first_token_at or done_at) - sent_at
    )
    summary["client_latency_s"] = done_at - sent_at
    return summary
