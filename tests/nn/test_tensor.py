"""Unit tests for the autograd engine: every op gets a numerical grad check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, no_grad, stack, where


def check_gradient(build, shapes, rng, atol=1e-6, rtol=1e-5):
    """Compare analytic and numerical gradients of ``build`` over leaf inputs.

    ``build`` maps a list of Tensors to a scalar Tensor.
    """
    arrays = [rng.normal(size=shape) for shape in shapes]
    leaves = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(leaves)
    out.backward()

    eps = 1e-6
    for leaf_idx, array in enumerate(arrays):
        numeric = np.zeros_like(array)
        flat_num = numeric.reshape(-1)
        flat_arr = array.reshape(-1)
        for i in range(flat_arr.size):
            original = flat_arr[i]
            for sign, slot in ((1, 0), (-1, 1)):
                flat_arr[i] = original + sign * eps
                rebuilt = [Tensor(a) for a in arrays]
                val = float(build(rebuilt).data)
                if slot == 0:
                    plus = val
                else:
                    minus = val
            flat_arr[i] = original
            flat_num[i] = (plus - minus) / (2 * eps)
        analytic = leaves[leaf_idx].grad
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


class TestArithmetic:
    def test_add_broadcast_gradients(self, rng):
        check_gradient(lambda ts: (ts[0] + ts[1]).sum(), [(3, 4), (4,)], rng)

    def test_sub_gradients(self, rng):
        check_gradient(lambda ts: (ts[0] - ts[1] * 2.0).sum(), [(2, 3), (2, 3)], rng)

    def test_mul_broadcast_gradients(self, rng):
        check_gradient(lambda ts: (ts[0] * ts[1]).sum(), [(2, 3, 4), (3, 4)], rng)

    def test_div_gradients(self, rng):
        def build(ts):
            return (ts[0] / (ts[1] * ts[1] + 1.0)).sum()

        check_gradient(build, [(3, 3), (3, 3)], rng)

    def test_pow_gradients(self, rng):
        check_gradient(lambda ts: ((ts[0] ** 3) + (ts[0] ** 2)).sum(), [(4,)], rng)

    def test_scalar_interop(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (2.0 * x + 1.0 - 0.5) / 2.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 - x
        z = 1.0 / x
        (y + z).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0 - 0.25])


class TestMatmul:
    def test_matrix_matrix(self, rng):
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [(3, 4), (4, 5)], rng)

    def test_batched_matmul(self, rng):
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [(2, 3, 4), (2, 4, 5)], rng)

    def test_broadcast_batched_matmul(self, rng):
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [(2, 3, 4), (4, 5)], rng)

    def test_matrix_vector(self, rng):
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [(3, 4), (4,)], rng)

    def test_vector_matrix(self, rng):
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [(4,), (4, 3)], rng)

    def test_vector_vector(self, rng):
        check_gradient(lambda ts: ts[0] @ ts[1], [(4,), (4,)], rng)


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        ["exp", "tanh", "sigmoid", "relu", "gelu", "erf", "abs", "sqrt", "log"],
    )
    def test_unary_gradients(self, op, rng):
        def build(ts):
            x = ts[0]
            if op in ("sqrt", "log"):
                x = x * x + 1.0  # keep the domain positive
            return getattr(x, op)().sum()

        check_gradient(build, [(3, 4)], rng)

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_relu_zeroes_negative(self):
        x = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(x.relu().data, [0.0, 2.0])

    def test_gelu_matches_exact_definition(self, rng):
        from scipy import special

        x = rng.normal(size=(5,))
        expected = x * 0.5 * (1 + special.erf(x / np.sqrt(2)))
        np.testing.assert_allclose(Tensor(x).gelu().data, expected)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        check_gradient(lambda ts: (ts[0].sum(axis=1, keepdims=True) ** 2).sum(), [(3, 4)], rng)

    def test_mean_gradients(self, rng):
        check_gradient(lambda ts: (ts[0].mean(axis=0) ** 2).sum(), [(3, 4)], rng)

    def test_mean_axis_tuple(self, rng):
        check_gradient(lambda ts: (ts[0].mean(axis=(0, 2)) ** 2).sum(), [(2, 3, 4)], rng)

    def test_var_matches_numpy(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(x).var(axis=-1).data, x.var(axis=-1))

    def test_max_gradient_no_ties(self):
        x = Tensor([[1.0, 3.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_gradient_splits_ties(self):
        x = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestShapeOps:
    def test_reshape_gradients(self, rng):
        check_gradient(lambda ts: (ts[0].reshape(6, 2) ** 2).sum(), [(3, 4)], rng)

    def test_transpose_gradients(self, rng):
        check_gradient(
            lambda ts: (ts[0].transpose((1, 0, 2)) ** 2).sum(), [(2, 3, 4)], rng
        )

    def test_swapaxes_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 4))
        t = Tensor(x).swapaxes(0, 2)
        np.testing.assert_allclose(t.data, np.swapaxes(x, 0, 2))

    def test_getitem_gradients(self, rng):
        check_gradient(lambda ts: (ts[0][1:, ::2] ** 2).sum(), [(3, 4)], rng)

    def test_fancy_index_accumulates_duplicates(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])

    def test_concatenate_gradients(self, rng):
        check_gradient(
            lambda ts: (concatenate([ts[0], ts[1]], axis=1) ** 2).sum(),
            [(2, 3), (2, 2)],
            rng,
        )

    def test_stack_gradients(self, rng):
        check_gradient(
            lambda ts: (stack([ts[0], ts[1]], axis=0) ** 2).sum(), [(2, 3), (2, 3)], rng
        )


class TestComposite:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(x.softmax(axis=-1).data.sum(axis=-1), np.ones(5))

    def test_softmax_gradients(self, rng):
        check_gradient(lambda ts: (ts[0].softmax(axis=-1) ** 2).sum(), [(3, 4)], rng)

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(
            x.log_softmax(axis=-1).data, np.log(x.softmax(axis=-1).data), atol=1e-12
        )

    def test_softmax_stable_under_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = x.softmax(axis=-1).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_masked_fill_gradient(self, rng):
        mask = np.array([[True, False], [False, True]])
        check_gradient(lambda ts: (ts[0].masked_fill(mask, 0.0) ** 2).sum(), [(2, 2)], rng)

    def test_where_gradients(self, rng):
        cond = np.array([True, False, True])
        check_gradient(
            lambda ts: (where(cond, ts[0], ts[1]) ** 2).sum(), [(3,), (3,)], rng
        )

    def test_embedding_lookup_gradients(self):
        table = Tensor(np.eye(4), requires_grad=True)
        idx = np.array([[0, 1], [1, 3]])
        table.embedding_lookup(idx).sum().backward()
        # Each selected row receives a gradient of ones(4); row 1 is selected twice.
        np.testing.assert_allclose(table.grad.sum(axis=1), [4.0, 8.0, 0.0, 4.0])

    def test_dropout_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = x.dropout(0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        generator = np.random.default_rng(7)
        x = Tensor(np.ones((200, 200)))
        out = x.dropout(0.3, generator, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_dropout_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).dropout(1.0, rng)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x * 2.0  # x used twice
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_backward_twice_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 5.0
        y.sum().backward()
        first = x.grad.copy()
        z = x * 5.0
        z.sum().backward()
        np.testing.assert_allclose(x.grad, first * 2)

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_constant_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_gradient_shape_mismatch_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 1.0).backward(np.ones(4))

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = x.detach() * 3.0
        assert not y.requires_grad

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):  # deeper than the default recursion limit
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_as_tensor_passthrough(self):
        x = Tensor([1.0])
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1, 2]), Tensor)

    def test_diamond_graph_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        ((a * b)).sum().backward()  # d/dx (12 x^2) = 24x
        np.testing.assert_allclose(x.grad, [48.0])
