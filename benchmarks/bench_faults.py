"""Fault-injection benchmark: hybrid GEMV accuracy under device faults.

Sweeps the SLC protection fraction against the fault scenarios of
``bench_faults`` (stuck cells, a year of power-law drift, hot-chip read
noise, and their combination) on a :class:`~repro.rram.FaultySimBackend`,
printing the weighted L1-relative error grid.  The payload is written to
``BENCH_faults.json`` at the repo root — the accuracy-trajectory file CI
uploads as an artifact and gates on (SLC protection monotonically reduces
the clean programming-noise error; every fault scenario hurts strictly
more than clean at every protection fraction).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exp import ExperimentSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def test_bench_faults(benchmark, print_header, fresh_runner):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    params = {"protect_fractions": (0.0, 1.0)} if smoke else {}
    spec = ExperimentSpec("bench_faults", params=params)

    result = benchmark.pedantic(
        lambda: fresh_runner.run(spec), rounds=1, iterations=1
    )
    value = result.value

    print_header(
        "Fault benchmark — hybrid GEMV weighted L1-relative error "
        "(protection fraction x fault scenario)"
    )
    print(f"{'scenario':>10} {'slc_frac':>8} {'error':>9}")
    for row in value["grid"]:
        print(
            f"{row['scenario']:>10} {row['protect_fraction']:>8.2f} "
            f"{row['error']:>9.4f}"
        )

    if smoke:
        # Never clobber the committed full-grid trajectory with a smoke grid.
        print("smoke mode: skipping BENCH_faults.json update")
    else:
        BENCH_PATH.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BENCH_PATH}")

    # Accuracy-trajectory gates (ISSUE 6 acceptance criteria).  Every grid
    # point was already double-computed inside the study (exact-determinism
    # cross-check); here we gate the physics.
    gate = value["gate"]
    curve = [point["error"] for point in gate["clean_curve"]]
    assert curve == sorted(curve, reverse=True), gate["clean_curve"]
    assert gate["protection_gain"] > 0, gate
    assert gate["min_fault_margin"] > 0, gate
