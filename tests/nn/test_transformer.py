"""Tests for the three Transformer variants and their static-linear plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    DecoderLM,
    EncoderClassifier,
    Linear,
    TransformerConfig,
    VisionTransformer,
    cross_entropy,
    lm_cross_entropy,
)


@pytest.fixture
def tiny_config():
    return TransformerConfig(
        vocab_size=30,
        d_model=16,
        num_heads=2,
        num_layers=2,
        d_ff=32,
        max_seq_len=12,
        num_classes=3,
        seed=0,
    )


class TestConfig:
    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            TransformerConfig(d_model=10, num_heads=3)

    def test_rejects_bad_activation(self):
        with pytest.raises(ValueError):
            TransformerConfig(activation="swish")

    def test_rejects_bad_patch_size(self):
        with pytest.raises(ValueError):
            TransformerConfig(image_size=30, patch_size=8)

    def test_derived_dimensions(self):
        cfg = TransformerConfig(d_model=64, num_heads=4, image_size=32, patch_size=8)
        assert cfg.d_head == 16
        assert cfg.num_patches == 16
        assert cfg.patch_dim == 3 * 64


class TestEncoderClassifier:
    def test_logit_shape(self, tiny_config, rng):
        model = EncoderClassifier(tiny_config)
        ids = rng.integers(0, 30, size=(4, 10))
        assert model(ids).shape == (4, 3)

    def test_rejects_overlong_sequence(self, tiny_config, rng):
        model = EncoderClassifier(tiny_config)
        with pytest.raises(ValueError):
            model(rng.integers(0, 30, size=(1, 13)))

    def test_static_linear_count_is_six_per_layer(self, tiny_config):
        model = EncoderClassifier(tiny_config)
        linears = list(model.iter_static_linears())
        assert len(linears) == 6 * tiny_config.num_layers
        names = [name for name, _ in linears]
        assert "blocks.0.w_q" in names and "blocks.1.ffn2" in names

    def test_replace_static_linear(self, tiny_config, rng):
        model = EncoderClassifier(tiny_config)
        new_layer = Linear(16, 16, rng=rng)
        model.replace_static_linear("blocks.0.w_q", new_layer)
        assert model.blocks[0].attn.w_q is new_layer
        model.replace_static_linear("blocks.1.ffn1", Linear(16, 32, rng=rng))
        ids = rng.integers(0, 30, size=(2, 8))
        assert model(ids).shape == (2, 3)

    def test_replace_rejects_unknown_name(self, tiny_config):
        model = EncoderClassifier(tiny_config)
        with pytest.raises(KeyError):
            model.replace_static_linear("blocks.0.nope", Linear(4, 4))
        with pytest.raises(KeyError):
            model.replace_static_linear("head", Linear(4, 4))

    def test_trains_on_trivial_task(self, tiny_config, rng):
        """One-batch overfit: loss must drop substantially."""
        from repro.nn import AdamW

        model = EncoderClassifier(tiny_config)
        ids = rng.integers(0, 30, size=(8, 10))
        labels = rng.integers(0, 3, size=8)
        opt = AdamW(model.parameters(), lr=5e-3)
        first_loss = None
        for _ in range(30):
            logits = model(ids)
            loss = cross_entropy(logits, labels)
            if first_loss is None:
                first_loss = float(loss.data)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.5 * first_loss


class TestDecoderLM:
    def test_logits_shape(self, tiny_config, rng):
        model = DecoderLM(tiny_config)
        ids = rng.integers(0, 30, size=(2, 8))
        assert model(ids).shape == (2, 8, 30)

    def test_causality_end_to_end(self, tiny_config, rng):
        model = DecoderLM(tiny_config)
        ids = rng.integers(0, 30, size=(1, 8))
        base = model(ids).data
        perturbed = ids.copy()
        perturbed[0, 7] = (perturbed[0, 7] + 1) % 30
        out = model(perturbed).data
        np.testing.assert_allclose(out[0, :7], base[0, :7], atol=1e-10)

    def test_generate_extends_prompt(self, tiny_config):
        model = DecoderLM(tiny_config)
        out = model.generate(np.array([1, 2, 3]), max_new_tokens=4)
        assert out.shape == (7,)
        np.testing.assert_array_equal(out[:3], [1, 2, 3])

    def test_generate_sampling_is_seeded(self, tiny_config):
        model = DecoderLM(tiny_config)
        a = model.generate(np.array([1]), 5, rng=np.random.default_rng(0))
        b = model.generate(np.array([1]), 5, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)

    def test_lm_loss_decreases_with_training(self, tiny_config, rng):
        from repro.nn import AdamW

        model = DecoderLM(tiny_config)
        ids = rng.integers(0, 30, size=(4, 9))
        inputs, targets = ids[:, :-1], ids[:, 1:]
        opt = AdamW(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(25):
            loss = lm_cross_entropy(model(inputs), targets)
            losses.append(float(loss.data))
            model.zero_grad()
            loss.backward()
            opt.step()
        assert losses[-1] < 0.5 * losses[0]


class TestVisionTransformer:
    @pytest.fixture
    def vit_config(self):
        return TransformerConfig(
            d_model=16,
            num_heads=2,
            num_layers=1,
            d_ff=32,
            image_size=16,
            patch_size=8,
            in_channels=3,
            num_classes=4,
            max_seq_len=8,
        )

    def test_patchify_shape_and_content(self):
        images = np.arange(2 * 3 * 8 * 8, dtype=float).reshape(2, 3, 8, 8)
        patches = VisionTransformer.patchify(images, 4)
        assert patches.shape == (2, 4, 3 * 16)
        # First patch of first image, first channel = top-left 4x4 block.
        np.testing.assert_allclose(patches[0, 0, :16], images[0, 0, :4, :4].reshape(-1))

    def test_patchify_rejects_indivisible(self):
        with pytest.raises(ValueError):
            VisionTransformer.patchify(np.zeros((1, 3, 9, 9)), 4)

    def test_forward_shape(self, vit_config, rng):
        model = VisionTransformer(vit_config)
        out = model(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 4)

    def test_static_linears_exclude_patch_and_head(self, vit_config):
        model = VisionTransformer(vit_config)
        names = [name for name, _ in model.iter_static_linears()]
        assert all(name.startswith("blocks.") for name in names)
        assert len(names) == 6

    def test_vit_learns_to_separate_classes(self, vit_config, rng):
        from repro.nn import AdamW

        model = VisionTransformer(vit_config)
        # Two classes: bright top-half vs bright bottom-half images.
        images = rng.normal(size=(8, 3, 16, 16)) * 0.1
        labels = np.array([0, 1] * 4)
        images[labels == 0, :, :8, :] += 2.0
        images[labels == 1, :, 8:, :] += 2.0
        opt = AdamW(model.parameters(), lr=5e-3)
        for _ in range(25):
            loss = cross_entropy(model(images), labels)
            model.zero_grad()
            loss.backward()
            opt.step()
        preds = np.argmax(model(images).data, axis=1)
        assert (preds == labels).mean() >= 0.9
