"""Entry point for ``python -m repro.exp``."""

import sys

from repro.exp.cli import main

if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head -1`) closed the pipe early;
        # that's their prerogative, not an error worth a traceback.
        sys.stderr.close()
        code = 0
    sys.exit(code)
