"""Evaluation metrics and experiment harness."""

from repro.eval.metrics import (
    accuracy,
    evaluate_classifier,
    evaluate_lm,
    evaluate_regressor,
    matthews_correlation,
    metric_for_task,
    pearson_correlation,
    perplexity,
)

__all__ = [
    "accuracy",
    "evaluate_classifier",
    "evaluate_lm",
    "evaluate_regressor",
    "matthews_correlation",
    "metric_for_task",
    "pearson_correlation",
    "perplexity",
]
