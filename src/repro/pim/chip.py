"""HyFlexPIM chip (Fig. 5(a)): 24 processing units and the model mapper.

A chip pipelines one Transformer layer per PU.  The mapper implements the
paper's three flexibility cases (Section 3.1):

1. a layer too large for one PU spans multiple PUs (tensor parallelism);
2. a model with fewer layers than PUs replicates layers over spare PUs for
   throughput (tensor parallelism across the batch/sequence);
3. a model with more layers than available PUs cascades across chips
   (pipeline parallelism) — handled by :mod:`repro.arch.scaling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.arch.interconnect import OCI_LINK, PCIE6_LINK
from repro.pim.processing_unit import ProcessingUnit, ProcessingUnitConfig
from repro.rram.cell import CellType, MLC2
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec
from repro.svd.pipeline import LayerPlan, RedistributionPlan

__all__ = ["ChipConfig", "LayerAssignment", "HyFlexPimChip", "group_layers_by_block"]


def group_layers_by_block(names: Iterable[str]) -> dict[int, list[str]]:
    """Group layer-plan names ('blocks.<i>.<leaf>') by block index.

    Shared by the single-chip mapper below and the multi-chip
    :class:`~repro.dist.ShardPlan` builder, which derives its pipeline
    (layer-to-chip) assignment from the same block structure.
    """
    groups: dict[int, list[str]] = {}
    for name in names:
        parts = name.split(".")
        if parts[0] != "blocks":
            raise ValueError(f"unexpected layer name {name!r}")
        groups.setdefault(int(parts[1]), []).append(name)
    return dict(sorted(groups.items()))


@dataclass(frozen=True)
class ChipConfig:
    """Chip composition per Fig. 5(a) and Section 5.4.

    Bus bandwidths are derived from the canonical
    :mod:`repro.arch.interconnect` links (PCIe-6.0 x16 global bus, on-chip
    OCI) so the paper's numbers live in exactly one place.
    """

    num_processing_units: int = 24
    pu: ProcessingUnitConfig = field(default_factory=ProcessingUnitConfig)
    global_bus_gbps: float = PCIE6_LINK.bandwidth_gbps  # PCIe-6.0 x16 (Section 3.1)
    inner_bus_gbps: float = OCI_LINK.bandwidth_gbps  # on-chip interconnect (OCI)


@dataclass
class LayerAssignment:
    """Mapping of one model layer (all its matrices) to processing units."""

    layer_index: int
    pu_indices: list[int]
    matrices: list[str]


class HyFlexPimChip:
    """Deployment target: place a whole redistribution plan onto 24 PUs."""

    def __init__(
        self,
        config: ChipConfig | None = None,
        noise: NoiseSpec | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or ChipConfig()
        self.noise = noise or DEFAULT_NOISE
        self.processing_units = [
            ProcessingUnit(self.config.pu, noise=self.noise, seed=seed + 1000 * i)
            for i in range(self.config.num_processing_units)
        ]
        self.assignments: list[LayerAssignment] = []

    def deploy(
        self,
        plan: RedistributionPlan | Mapping[str, LayerPlan],
        mlc_cell: CellType = MLC2,
    ) -> list[LayerAssignment]:
        """Place every Transformer block on processing units.

        ``plan`` is a :class:`RedistributionPlan` or a bare name ->
        :class:`LayerPlan` mapping (the form the sharded deployment planner
        hands in after slicing ranks).  One PU per block when it fits; a
        block that exceeds one PU's arrays spills onto subsequent PUs (the
        paper's case 1).  Raises :class:`MemoryError` when the chip is
        exhausted (callers then scale out to more chips — the paper's
        case 3).
        """
        layers = plan.layers if isinstance(plan, RedistributionPlan) else dict(plan)
        groups = group_layers_by_block(layers)
        next_pu = 0
        self.assignments = []
        for block_index, names in groups.items():
            used_pus: list[int] = []
            for name in names:
                layer_plan = layers[name]
                placed = False
                probe = next_pu
                while probe < len(self.processing_units):
                    pu = self.processing_units[probe]
                    if pu.can_fit_layer(layer_plan, mlc_cell):
                        pu.place_layer(layer_plan, mlc_cell)
                        if probe not in used_pus:
                            used_pus.append(probe)
                        placed = True
                        break
                    probe += 1
                if not placed:
                    raise MemoryError(
                        f"chip exhausted while placing block {block_index} ({name}); "
                        "scale out with pipeline parallelism"
                    )
            self.assignments.append(
                LayerAssignment(layer_index=block_index, pu_indices=used_pus, matrices=names)
            )
            # The next block starts at the furthest PU used so far: blocks
            # are pipelined PU-by-PU (Fig. 5), sharing only when spilling.
            next_pu = max(used_pus) + 1 if used_pus else next_pu
        return self.assignments

    # -- chip-level queries -------------------------------------------------
    def pus_used(self) -> int:
        return len({i for a in self.assignments for i in a.pu_indices})

    def arrays_used(self) -> int:
        return sum(pu.arrays_used() for pu in self.processing_units)

    def analog_utilization(self) -> float:
        total = self.config.num_processing_units * self.config.pu.total_analog_arrays
        return self.arrays_used() / total

    def transfer_latency_cycles(self, num_bytes: int, clock_ghz: float = 1.0) -> float:
        """Inter-PU transfer latency over the OCI at the given core clock."""
        seconds = num_bytes / (self.config.inner_bus_gbps * 1e9)
        return seconds * clock_ghz * 1e9
