"""Sharded-execution correctness: the ISSUE-5 equivalence grid.

The contract: a tensor-parallel deployment of a crossbar-mode
``HybridLinear`` is **bitwise-equal** to the unsharded fast-kernel forward
whenever the deployment is noiseless and either (a) saturation-free — the
exact-short-circuit regime, SLC/MLC2 on the default 64x128 arrays — or
(b) tile-aligned: :func:`~repro.rram.mapping.partition_rank` places shard
boundaries on whole array row tiles whenever enough tiles exist, and the
protected-rank prefix also ends on a tile boundary (the SLC/MLC placement
compacts protected columns before tiling), so every ADC conversion sums
exactly the rows it sums unsharded and equality survives even where
MLC3/MLC4 bitlines clip (a mid-array split would legitimately move
tile-local clipping — hardware never splits an array's wordlines, and
neither does the planner when it can avoid it).

Under calibrated programming noise the sharded forward is deterministic
(per-shard seeded draws) and statistically close; a 1-way deployment
reproduces the unsharded noise draws bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import DeviceMesh
from repro.pim.hybrid import HybridLinear
from repro.rram.cell import CELL_TYPES
from repro.rram.crossbar import CrossbarConfig
from repro.rram.noise import DEFAULT_NOISE, NoiseSpec
from repro.svd.pipeline import LayerPlan

WAYS = (1, 2, 4, 8)

#: Per-cell crossbar geometry.  SLC/MLC2 run the paper's 64x128 arrays
#: (noiseless => saturation-free => the exact short-circuit); MLC3/MLC4
#: use 4-row arrays so a 32-rank layer has 8 row tiles and every shard
#: width in WAYS is tile-aligned (see module docstring).
CELL_CONFIGS = {
    "SLC": CrossbarConfig(),
    "MLC2": CrossbarConfig(),
    "MLC3": CrossbarConfig(rows=4, cols=32),
    "MLC4": CrossbarConfig(rows=4, cols=32),
}
#: MLC3/MLC4 also tile-align the *protected region* (8 = two 4-row tiles):
#: the SLC/MLC placement compacts protected and unprotected columns into
#: separate matrices, so rank-space tile alignment only survives the
#: compaction when the protected prefix ends on a tile boundary.
CELL_RANKS = {"SLC": 24, "MLC2": 24, "MLC3": 32, "MLC4": 32}
CELL_PROTECTED = {"SLC": 6, "MLC2": 6, "MLC3": 8, "MLC4": 8}


def make_layer_plan(rng, out_f=48, in_f=40, rank=24, protected=6):
    mask = np.zeros(rank, dtype=bool)
    mask[:protected] = True
    return LayerPlan(
        name="blocks.0.test",
        a_matrix=rng.normal(size=(rank, in_f)) / np.sqrt(in_f),
        b_matrix=rng.normal(size=(out_f, rank)) / np.sqrt(rank),
        bias=rng.normal(size=out_f),
        protected_ranks=mask,
        sigma_gradients=rng.random(rank),
    )


class TestBitwiseEquivalenceGrid:
    @pytest.mark.parametrize("cell_name", ["SLC", "MLC2", "MLC3", "MLC4"])
    @pytest.mark.parametrize("ways", WAYS)
    def test_noiseless_sharded_equals_unsharded_fast_kernel(self, rng, cell_name, ways):
        plan = make_layer_plan(
            rng, rank=CELL_RANKS[cell_name], protected=CELL_PROTECTED[cell_name]
        )
        x = rng.normal(size=(5, 40))
        kwargs = dict(
            noise=NoiseSpec.noiseless(),
            mode="crossbar",
            mlc_cell=CELL_TYPES[cell_name],
            config=CELL_CONFIGS[cell_name],
            seed=3,
        )
        baseline = HybridLinear(plan, **kwargs)
        reference = baseline.forward(x).data

        sharded = HybridLinear(plan, **kwargs)
        mesh = DeviceMesh()
        sharded.deploy(mesh, tensor_parallel=ways)
        np.testing.assert_array_equal(sharded.forward(x).data, reference)
        # Every mapped shard knows its slice of the logical rank dimension.
        if ways > 1:
            specs = [s.shard for s in sharded._shard_splits]
            assert all(spec is not None for spec in specs)
            assert [spec.index for spec in specs] == list(range(len(specs)))
            assert specs[0].start == 0
            assert specs[-1].stop == plan.rank

    @pytest.mark.parametrize("ways", (2, 4))
    def test_batched_3d_input_matches(self, rng, ways):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(2, 3, 40))
        kwargs = dict(noise=NoiseSpec.noiseless(), mode="crossbar", seed=1)
        reference = HybridLinear(plan, **kwargs).forward(x).data
        sharded = HybridLinear(plan, **kwargs)
        sharded.deploy(DeviceMesh(), tensor_parallel=ways)
        np.testing.assert_array_equal(sharded.forward(x).data, reference)

    def test_all_protected_and_none_protected_edges(self, rng):
        for protected in (0, 24):
            plan = make_layer_plan(rng, protected=protected)
            x = rng.normal(size=(4, 40))
            kwargs = dict(noise=NoiseSpec.noiseless(), mode="crossbar", seed=2)
            reference = HybridLinear(plan, **kwargs).forward(x).data
            sharded = HybridLinear(plan, **kwargs)
            sharded.deploy(DeviceMesh(), tensor_parallel=4)
            np.testing.assert_array_equal(sharded.forward(x).data, reference)

    def test_calibrated_scales_preserved_across_sharding(self, rng):
        """Frozen activation scales must flow through the sharded forward."""
        plan = make_layer_plan(rng)
        x = rng.normal(size=(4, 40))
        kwargs = dict(noise=NoiseSpec.noiseless(), mode="crossbar", seed=5)

        def calibrated(layer):
            layer.begin_calibration()
            layer.forward(x)
            layer.finish_calibration()
            return layer

        baseline = calibrated(HybridLinear(plan, **kwargs))
        sharded = HybridLinear(plan, **kwargs)
        sharded.deploy(DeviceMesh(), tensor_parallel=4)
        calibrated(sharded)
        assert sharded.is_calibrated
        np.testing.assert_array_equal(sharded.forward(x).data, baseline.forward(x).data)


class TestNoisyDeployment:
    def test_one_way_reproduces_unsharded_noise_bitwise(self, rng):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(5, 40))
        kwargs = dict(noise=DEFAULT_NOISE, mode="crossbar", seed=3)
        reference = HybridLinear(plan, **kwargs).forward(x).data
        sharded = HybridLinear(plan, **kwargs)
        sharded.deploy(DeviceMesh(), tensor_parallel=1)
        np.testing.assert_array_equal(sharded.forward(x).data, reference)

    @pytest.mark.parametrize("ways", (2, 4, 8))
    def test_noisy_sharding_is_deterministic_and_close(self, rng, ways):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(5, 40))
        kwargs = dict(noise=DEFAULT_NOISE, mode="crossbar", seed=3)
        reference = HybridLinear(plan, **kwargs).forward(x).data

        def run():
            layer = HybridLinear(plan, **kwargs)
            layer.deploy(DeviceMesh(), tensor_parallel=ways)
            return layer.forward(x).data

        first, second = run(), run()
        # Per-shard seeded draws: reproducible across deployments...
        np.testing.assert_array_equal(first, second)
        # ...and statistically close to the unsharded noisy forward: the
        # draws differ but the calibrated-noise distribution does not, so
        # the relative deviation stays at the noise scale (MLC2's
        # BER-calibrated sigma puts independent draws of this layer ~0.5
        # apart in relative Frobenius norm; 0.8 bounds that with margin
        # while still failing on any structural error).
        rel = np.linalg.norm(first - reference) / np.linalg.norm(reference)
        assert rel < 0.8, rel


class TestFastModeSharding:
    @pytest.mark.parametrize("ways", WAYS)
    def test_fast_mode_allclose(self, rng, ways):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(5, 40))
        layer = HybridLinear(plan, mode="fast", seed=7)
        reference = layer.forward(x).data.copy()
        layer.deploy(DeviceMesh(), tensor_parallel=ways)
        got = layer.forward(x).data
        # Same noised factors, partial sums recombined additively — equal
        # up to float summation order.
        np.testing.assert_allclose(got, reference, rtol=1e-10, atol=1e-12)

    def test_parallel_threads_match_serial(self, rng):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(5, 40))
        serial = HybridLinear(plan, mode="fast", seed=7)
        serial.deploy(DeviceMesh(), tensor_parallel=4, parallel=False)
        threaded = HybridLinear(plan, mode="fast", seed=7)
        threaded.deploy(DeviceMesh(), tensor_parallel=4, parallel=True)
        np.testing.assert_array_equal(
            serial.forward(x).data, threaded.forward(x).data
        )


class TestCrossbarParallelThreads:
    def test_threaded_crossbar_matches_serial(self, rng):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(5, 40))
        kwargs = dict(noise=NoiseSpec.noiseless(), mode="crossbar", seed=3)
        serial = HybridLinear(plan, **kwargs)
        serial.deploy(DeviceMesh(), tensor_parallel=4, parallel=False)
        threaded = HybridLinear(plan, **kwargs)
        threaded.deploy(DeviceMesh(), tensor_parallel=4, parallel=True)
        np.testing.assert_array_equal(
            serial.forward(x).data, threaded.forward(x).data
        )


class TestDeployLifecycle:
    def test_deploy_validation(self, rng):
        plan = make_layer_plan(rng)
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        mesh = DeviceMesh()
        with pytest.raises(ValueError):
            layer.deploy(mesh, rank_slices=[])
        with pytest.raises(ValueError):
            layer.deploy(mesh, rank_slices=[(0, 10)])  # does not cover rank
        with pytest.raises(ValueError):
            layer.deploy(mesh, rank_slices=[(0, 10), (12, 24)])  # gap
        with pytest.raises(ValueError):
            layer.deploy(mesh, rank_slices=[(0, 10), (10, 10), (10, 24)])  # empty

    def test_undeploy_restores_unsharded_forward(self, rng):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(3, 40))
        kwargs = dict(noise=NoiseSpec.noiseless(), mode="crossbar", seed=3)
        layer = HybridLinear(plan, **kwargs)
        reference = layer.forward(x).data.copy()
        layer.deploy(DeviceMesh(), tensor_parallel=4)
        assert layer.is_sharded
        layer.undeploy()
        assert not layer.is_sharded and layer.num_shards == 1
        np.testing.assert_array_equal(layer.forward(x).data, reference)

    def test_arrays_used_recomputed_per_shard_tiling(self, rng):
        plan = make_layer_plan(rng)
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        unsharded = layer.arrays_used()
        layer.deploy(DeviceMesh(), tensor_parallel=8)
        assert layer.arrays_used() >= unsharded  # per-shard tiling rounds up
        layer.undeploy()
        assert layer.arrays_used() == unsharded

    def test_fast_mode_arrays_used_matches_crossbar(self, rng):
        plan = make_layer_plan(rng)
        fast = HybridLinear(plan, mode="fast")
        crossbar = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        for ways in (2, 4):
            fast.deploy(DeviceMesh(), tensor_parallel=ways)
            crossbar.deploy(DeviceMesh(), tensor_parallel=ways)
            assert fast.arrays_used() == crossbar.arrays_used()


class TestShardStatsAndTraffic:
    def test_per_shard_stats_and_merged_total(self, rng):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(4, 40))
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        layer.deploy(DeviceMesh(), tensor_parallel=4)
        layer.forward(x)
        per_shard = layer.shard_stats()
        assert len(per_shard) == 4
        assert all(s.adc_conversions > 0 for s in per_shard)
        assert sum(s.adc_conversions for s in per_shard) == (
            layer.merged_stats().adc_conversions
        )
        layer.reset_stats()
        assert layer.merged_stats().adc_conversions == 0

    def test_sharded_forward_records_oci_traffic(self, rng):
        plan = make_layer_plan(rng)
        x = rng.normal(size=(4, 40))
        mesh = DeviceMesh()
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        layer.deploy(mesh, tensor_parallel=4)
        layer.forward(x)
        ledger = mesh.traffic["oci"]
        # 3 non-aggregating shards x batch x out_features x 4 B partial sums
        # + 3 x 8 B scale sync (uncalibrated per-call quantization).
        assert ledger.num_bytes == pytest.approx(3 * 4 * 48 * 4 + 3 * 8)
        assert mesh.traffic["pcie6"].num_bytes == 0.0

    def test_one_way_records_no_traffic(self, rng):
        plan = make_layer_plan(rng)
        mesh = DeviceMesh()
        layer = HybridLinear(plan, noise=NoiseSpec.noiseless(), mode="crossbar")
        layer.deploy(mesh, tensor_parallel=1)
        layer.forward(rng.normal(size=(4, 40)))
        assert mesh.transfer_seconds() == 0.0
