"""Process/thread fan-out shared by the experiment runner, core sweeps and
the sharded crossbar executor."""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

__all__ = ["map_with_pool", "map_with_threads"]

T = TypeVar("T")
R = TypeVar("R")


def map_with_pool(fn: Callable[[T], R], items: Iterable[T], workers: int) -> list[R]:
    """``[fn(item) for item in items]``, fanned out over ``workers`` processes.

    ``workers <= 1`` (or a single item) stays serial in-process.  Prefers the
    fork start method so callables and registry state defined in the parent
    (e.g. test-registered experiments) are visible in the children; falls
    back to the platform default where fork is unavailable.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items)


def map_with_threads(fn: Callable[[T], R], items: Iterable[T], workers: int) -> list[R]:
    """``[fn(item) for item in items]``, fanned out over ``workers`` threads.

    The thread variant exists for work that (a) releases the GIL — BLAS
    matmuls inside the fast crossbar kernel — and (b) mutates shared
    per-item state (each shard's :class:`~repro.rram.crossbar.GemvStats`)
    that a process pool could not send back cheaply.  ``workers <= 1`` (or
    a single item) stays serial in-process, preserving call order exactly.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))
