"""Tests for SVD decomposition, hard-threshold truncation and merging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.svd import (
    dense_mac_count,
    factored_mac_count,
    hard_threshold_rank,
    merge_sigma,
    reconstruction_error,
    svd_decompose,
    truncate_factors,
)


class TestDecompose:
    def test_reconstruction_is_exact_at_full_rank(self, rng):
        w = rng.normal(size=(8, 12))
        factors = svd_decompose(w)
        np.testing.assert_allclose(factors.reconstruct(), w, atol=1e-10)

    def test_singular_values_descending_nonnegative(self, rng):
        factors = svd_decompose(rng.normal(size=(10, 6)))
        assert (factors.s >= 0).all()
        assert (np.diff(factors.s) <= 1e-12).all()

    def test_orthogonality(self, rng):
        factors = svd_decompose(rng.normal(size=(7, 9)))
        np.testing.assert_allclose(factors.u.T @ factors.u, np.eye(7), atol=1e-10)
        np.testing.assert_allclose(factors.vt @ factors.vt.T, np.eye(7), atol=1e-10)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            svd_decompose(np.zeros(5))

    def test_truncation_keeps_top_ranks(self, rng):
        w = rng.normal(size=(8, 8))
        full = svd_decompose(w)
        trunc = truncate_factors(full, 3)
        assert trunc.rank == 3
        np.testing.assert_allclose(trunc.s, full.s[:3])

    def test_truncation_rank_clamped(self, rng):
        factors = svd_decompose(rng.normal(size=(4, 4)))
        assert truncate_factors(factors, 100).rank == 4

    def test_truncation_rejects_zero_rank(self, rng):
        factors = svd_decompose(rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            truncate_factors(factors, 0)

    def test_low_rank_matrix_reconstructs_exactly(self, rng):
        # Build an exactly rank-2 matrix; rank-2 truncation must be lossless.
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(2, 9))
        w = a @ b
        trunc = truncate_factors(svd_decompose(w), 2)
        np.testing.assert_allclose(trunc.reconstruct(), w, atol=1e-10)

    def test_truncation_error_is_tail_energy(self, rng):
        """Eckart-Young: squared error equals the sum of dropped sigma^2."""
        w = rng.normal(size=(10, 10))
        factors = svd_decompose(w)
        k = 4
        trunc = truncate_factors(factors, k)
        err = np.linalg.norm(w - trunc.reconstruct()) ** 2
        tail = (factors.s[k:] ** 2).sum()
        assert err == pytest.approx(tail, rel=1e-9)

    def test_merge_sigma_preserves_product(self, rng):
        factors = truncate_factors(svd_decompose(rng.normal(size=(8, 6))), 3)
        a, b = merge_sigma(factors)
        assert a.shape == (3, 6)
        assert b.shape == (8, 3)
        np.testing.assert_allclose(b @ a, factors.reconstruct(), atol=1e-10)


class TestHardThreshold:
    def test_square_matrix_gives_half(self):
        assert hard_threshold_rank(768, 768) == 384

    def test_bert_ffn_dimensions(self):
        # D_h = 768, D_ff = 3072 -> 768*3072/(768+3072) = 614.4 -> 614
        assert hard_threshold_rank(3072, 768) == 614

    def test_compute_preserved_at_threshold(self):
        for out_f, in_f in [(768, 768), (3072, 768), (768, 3072), (1024, 4096)]:
            k = hard_threshold_rank(out_f, in_f)
            dense = dense_mac_count(128, out_f, in_f)
            factored = factored_mac_count(128, out_f, in_f, k)
            assert factored <= dense
            # Within one rank's worth of MACs of the dense cost.
            slack = 128 * (out_f + in_f)
            assert dense - factored <= slack

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            hard_threshold_rank(0, 5)

    @given(st.integers(2, 512), st.integers(2, 512))
    @settings(max_examples=60, deadline=None)
    def test_threshold_never_exceeds_compute_property(self, out_f, in_f):
        k = hard_threshold_rank(out_f, in_f)
        assert 1 <= k <= min(out_f, in_f)
        assert factored_mac_count(1, out_f, in_f, k) <= dense_mac_count(1, out_f, in_f)


class TestReconstructionError:
    def test_monotone_decreasing_in_rank(self, rng):
        w = rng.normal(size=(12, 12))
        errors = [reconstruction_error(w, k) for k in (1, 3, 6, 9, 12)]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_zero_at_full_rank(self, rng):
        w = rng.normal(size=(6, 6))
        assert reconstruction_error(w, 6) < 1e-10
